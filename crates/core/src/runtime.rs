//! The simulated JVM: mutator threads, helper threads, work dispatch,
//! allocation, locking, and stop-the-world collection, all driven by one
//! deterministic event loop.
//!
//! # Execution model
//!
//! Every mutator thread is a state machine advanced whenever it holds a
//! core: it fetches work (a guided batch from the shared queue, or its
//! static assignment), then interprets its current item's steps — compute
//! bursts become timed events, allocations hit the heap (possibly
//! triggering a stop-the-world collection), critical sections go through
//! the monitor table (possibly blocking the thread). Helper threads
//! alternate sleeps and compute bursts, creating the transient
//! core-oversubscription the paper attributes to "many helper threads
//! [that] also run concurrently with the application threads" (§II-C).
//!
//! A stop-the-world pause is realized literally: the collector computes
//! the pause, every pending event is shifted by it, and the scheduler's
//! accounting absorbs it as GC time. From the mutators' perspective the
//! world stops and resumes; the allocation clock does not advance during
//! a pause, exactly as in a real JVM.

use rand::rngs::StdRng;
use rand::Rng;

use scalesim_gc::{AdaptiveSizer, Collector, GcCostModel, GcKind};
use scalesim_heap::{AllocResult, Heap, HeapConfig, NurseryLayout, ObjectId};
use scalesim_objtrace::{ObjSeq, ObjectTracer};
use scalesim_sched::{BlockReason, CpuScheduler, SchedPolicy, ThreadId, ThreadState};
use scalesim_simkit::{
    AbortReason, CancelToken, ChaosPlan, EventId, EventQueue, FaultClass, RngFactory, SimDuration,
    SimTime,
};
use scalesim_sync::{AcquireOutcome, LockTable, MonitorId};
use scalesim_trace::{to_chrome_json, write_atomic, CounterId, Counters, EventKind, Timeline};
use scalesim_workloads::{AppModel, DeathPoint, Distribution, Step, WorkItem};

use crate::config::{JvmConfig, OldGenPolicy};
use crate::error::{InvariantViolation, MonitorKind, SimError};
use crate::report::{RunOutcome, RunReport, ThreadReport};

/// Period, in events, of the full invariant scan (scheduler + monitor
/// cross-checks) when `JvmConfig::monitors` is on.
const MONITOR_SCAN_PERIOD: u64 = 1 << 16;

/// Period, in events, of the sim-time / host-time budget checks (the
/// event-count check is a plain compare and runs on every event).
const BUDGET_CHECK_PERIOD: u64 = 1 << 10;

/// The simulated JVM. Construct with a [`JvmConfig`], then [`Jvm::run`]
/// an application; each run is independent and deterministic.
///
/// # Examples
///
/// ```
/// use scalesim_core::{Jvm, JvmConfig};
/// use scalesim_workloads::xalan;
///
/// let config = JvmConfig::builder().threads(4).build().unwrap();
/// let report = Jvm::new(config).run(&xalan().scaled(0.01)).unwrap();
/// assert!(report.total_items() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Jvm {
    config: JvmConfig,
    /// External cancellation handle (the sweep watchdog), if attached.
    /// Deliberately outside [`JvmConfig`] so attaching a watchdog never
    /// changes a run's identity (memo keys hash the config).
    cancel: Option<CancelToken>,
}

impl Jvm {
    /// Creates a VM with the given configuration.
    #[must_use]
    pub fn new(config: JvmConfig) -> Self {
        Jvm {
            config,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token. The main loop polls it
    /// at the budget-check cadence; once cancelled, the run truncates
    /// with [`AbortReason::Watchdog`] and returns its partial metrics.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The VM's configuration.
    #[must_use]
    pub fn config(&self) -> &JvmConfig {
        &self.config
    }

    /// Executes `app` to completion and returns the measurements.
    ///
    /// A run that exhausts its [`JvmConfig::budget`] still returns `Ok`,
    /// with the report's outcome marked [`RunOutcome::Truncated`] and
    /// metrics covering the portion that did execute.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] when an invariant monitor detects
    /// inconsistent runtime state (which injected chaos faults are
    /// designed to provoke).
    pub fn run(&self, app: &dyn AppModel) -> Result<RunReport, SimError> {
        if let Some(spec) = &self.config.server {
            // Server mode: the app is only a carrier for memoization and
            // repro plumbing; the request workload drives the run.
            return crate::server::run_server(&self.config, spec, self.cancel.clone());
        }
        Sim::new(&self.config, app, self.cancel.clone()).run()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A thread was placed on a core and should take its next action.
    Resume(ThreadId),
    /// A thread's timed step (compute / critical hold / fetch) finished.
    StepDone(ThreadId),
    /// A thread's scheduling quantum expired.
    Quantum(ThreadId),
    /// A sleeping helper thread wakes for its next burst.
    HelperWake(ThreadId),
    /// Rotate the active cohort (biased scheduling).
    CohortRotate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    /// Plain on-CPU compute.
    Compute,
    /// Holding an application monitor; release on completion.
    Critical(MonitorId),
    /// Holding the work-queue monitor for a batch dispatch.
    Fetch(MonitorId),
    /// A helper thread's burst.
    HelperBurst,
    /// The concurrent old-generation collector's background work.
    CycleWork,
}

#[derive(Debug, Clone, Copy)]
struct RunningStep {
    kind: StepKind,
    deadline: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    Fetch,
    Critical,
    /// Per-batch result merge (guided queue mode): holds the merge lock
    /// but is not an item step, so no cursor movement.
    Merge,
}

#[derive(Debug, Clone, Copy)]
struct PendingAcquire {
    monitor: MonitorId,
    held: SimDuration,
    purpose: Purpose,
    granted: bool,
    /// Handoff cost charged by the lock algorithm (park/wake latency on
    /// the critical path); added to the critical step's duration when
    /// the grant is consumed. Zero under the FIFO baseline.
    penalty: SimDuration,
}

#[derive(Debug)]
struct ItemCursor {
    item: WorkItem,
    next: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadKind {
    Mutator,
    Helper,
    /// Background thread of a mostly-concurrent old-gen cycle.
    GcBackground,
}

#[derive(Debug)]
struct ThreadCtx {
    kind: ThreadKind,
    rng: StdRng,
    participates: bool,
    assigned_remaining: u64,
    batch_remaining: u64,
    cursor: Option<ItemCursor>,
    slots: Vec<Option<(ObjectId, ObjSeq)>>,
    item_end: Vec<(ObjectId, ObjSeq)>,
    carried: Vec<(ObjectId, ObjSeq, u32)>,
    pending: Option<PendingAcquire>,
    merge_pending: bool,
    /// Local heaplet-GC time the thread must absorb before continuing.
    local_pause_debt: SimDuration,
    /// Parked by cooperative phase (biased) scheduling until its cohort
    /// becomes active.
    parked: bool,
    running: Option<RunningStep>,
    paused: Option<(StepKind, SimDuration)>,
    step_timer: Option<EventId>,
    quantum_timer: Option<EventId>,
    items_done: u64,
    done: bool,
}

impl ThreadCtx {
    fn new(kind: ThreadKind, rng: StdRng) -> Self {
        ThreadCtx {
            kind,
            rng,
            participates: false,
            assigned_remaining: 0,
            batch_remaining: 0,
            cursor: None,
            slots: Vec::new(),
            item_end: Vec::new(),
            carried: Vec::new(),
            pending: None,
            merge_pending: false,
            local_pause_debt: SimDuration::ZERO,
            parked: false,
            running: None,
            paused: None,
            step_timer: None,
            quantum_timer: None,
            items_done: 0,
            done: false,
        }
    }
}

enum WorkOutcome {
    GotItem,
    StepScheduled,
    Blocked,
    Finished,
}

struct Sim<'a> {
    config: &'a JvmConfig,
    app: &'a dyn AppModel,
    queue: EventQueue<Event>,
    sched: CpuScheduler,
    locks: LockTable,
    heap: Heap,
    collector: Collector,
    tracer: ObjectTracer,
    ctxs: Vec<ThreadCtx>,
    /// Monitor instances per lock class.
    class_monitors: Vec<Vec<MonitorId>>,
    /// Remaining undistributed items (guided queue mode).
    shared_remaining: u64,
    /// Effective workers (threads that receive work).
    workers: usize,
    mutators: Vec<ThreadId>,
    helpers: Vec<ThreadId>,
    mutators_left: usize,
    permanents: Vec<(ObjectId, ObjSeq)>,
    /// Cohort count for cooperative phase scheduling (0 under fair).
    cohorts: usize,
    active_cohort: usize,
    /// A mostly-concurrent old-gen cycle in flight: (background thread,
    /// initial-mark pause to report at the end, remaining work).
    concurrent_cycle: Option<(ThreadId, SimDuration)>,
    /// Seed-derived fault-injection schedule.
    chaos: ChaosPlan,
    /// First invariant violation detected; aborts the run after the
    /// current event.
    violation: Option<InvariantViolation>,
    /// The runtime's own timeline recorder: chaos instant markers and
    /// allocation-pressure samples. The scheduler, lock table and
    /// collector carry their own; all four merge at report time.
    timeline: Timeline,
    /// The always-on fixed-slot counters registry.
    counters: Counters,
    /// Cooperative cancellation handle, polled at the budget cadence.
    cancel: Option<CancelToken>,
}

impl<'a> Sim<'a> {
    fn new(config: &'a JvmConfig, app: &'a dyn AppModel, cancel: Option<CancelToken>) -> Self {
        let cores = config.placement.enabled(&config.machine, config.cores());
        let mean_numa = config.machine.mean_numa_factor_of(&cores);
        // The runtime implements the *cooperative* phase variant of biased
        // scheduling itself (threads yield at item boundaries), so the OS
        // scheduler proper always runs the fair policy. `CpuScheduler`'s
        // strict cohort gating remains available for standalone studies.
        let mut sched = CpuScheduler::new(cores, config.quantum, SchedPolicy::Fair);
        sched.set_timeline(config.trace.recorder());
        let cohorts = match config.policy {
            SchedPolicy::Fair => 0,
            SchedPolicy::Biased { cohorts } => cohorts,
        };

        let layout = if config.heaplets {
            NurseryLayout::Heaplets {
                count: config.threads,
            }
        } else {
            NurseryLayout::Shared
        };
        let heap = Heap::new(HeapConfig::new(
            config.heap_bytes(app.min_heap_bytes()),
            config.nursery_fraction,
            layout,
        ));
        let gc_model = config
            .gc_model_override
            .unwrap_or_else(|| GcCostModel::hotspot_like(config.gc_workers(), mean_numa));
        let mut collector = Collector::new(gc_model);
        collector.set_timeline(config.trace.recorder());
        if config.old_gen == OldGenPolicy::MostlyConcurrent {
            // The runtime starts concurrent cycles; only promotion
            // failure may still escalate to a STW full collection.
            collector.set_occupancy_escalation(false);
        }

        let mut locks = LockTable::with_algorithm(config.lock_alg);
        locks.set_timeline(config.trace.recorder());
        let class_monitors: Vec<Vec<MonitorId>> = app
            .lock_classes()
            .iter()
            .map(|class| {
                (0..class.instances)
                    .map(|_| locks.create(&class.name))
                    .collect()
            })
            .collect();

        Sim {
            config,
            app,
            queue: EventQueue::new(),
            sched,
            locks,
            heap,
            collector,
            tracer: ObjectTracer::new(config.retention),
            ctxs: Vec::new(),
            class_monitors,
            shared_remaining: 0,
            workers: app.effective_workers(config.threads),
            mutators: Vec::new(),
            helpers: Vec::new(),
            mutators_left: 0,
            permanents: Vec::new(),
            cohorts,
            active_cohort: 0,
            concurrent_cycle: None,
            chaos: ChaosPlan::new(config.chaos, config.seed),
            violation: None,
            timeline: config.trace.recorder(),
            counters: Counters::new(),
            cancel,
        }
    }

    /// Records the first invariant violation; the main loop aborts after
    /// the current event.
    fn flag_violation(&mut self, kind: MonitorKind, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(InvariantViolation { kind, detail });
        }
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    // ------------------------------------------------------------------
    // Setup
    // ------------------------------------------------------------------

    fn spawn_threads(&mut self) {
        let rngs = RngFactory::new(self.config.seed);
        let total = self.app.total_items();

        // Static assignments, when applicable.
        let static_assign: Option<Vec<u64>> = match self.app.distribution() {
            Distribution::GuidedQueue { .. } => {
                self.shared_remaining = total;
                None
            }
            Distribution::StaticSkewed { .. } => {
                let shares = self.app.distribution().shares(self.workers);
                let mut assigned: Vec<u64> =
                    shares.iter().map(|s| (s * total as f64) as u64).collect();
                let leftover = total - assigned.iter().sum::<u64>();
                let n = assigned.len();
                for k in 0..leftover as usize {
                    assigned[k % n] += 1;
                }
                Some(assigned)
            }
        };

        for i in 0..self.config.threads {
            let tid = self.sched.register(self.now());
            debug_assert_eq!(tid.index(), i);
            let mut ctx = ThreadCtx::new(ThreadKind::Mutator, rngs.stream("mutator", i as u64));
            ctx.participates = i < self.workers;
            if let Some(assign) = &static_assign {
                ctx.assigned_remaining = if i < assign.len() { assign[i] } else { 0 };
            }
            self.ctxs.push(ctx);
            self.mutators.push(tid);
        }
        self.mutators_left = self.mutators.len();

        for h in 0..self.config.helper_threads {
            let tid = self.sched.register(self.now());
            self.ctxs.push(ThreadCtx::new(
                ThreadKind::Helper,
                rngs.stream("helper", h as u64),
            ));
            self.helpers.push(tid);
        }

        // Mutators start first so they win the initial dispatch race.
        for &tid in &self.mutators.clone() {
            let idle = {
                let ctx = &self.ctxs[tid.index()];
                !ctx.participates
                    || (matches!(self.app.distribution(), Distribution::StaticSkewed { .. })
                        && ctx.assigned_remaining == 0)
            };
            if idle {
                // No work will ever reach this thread; it exits at once.
                self.finish_thread(tid);
            } else {
                self.sched.start(tid, self.now());
            }
        }
        for &tid in &self.helpers.clone() {
            self.sched.start(tid, self.now());
        }

        if let SchedPolicy::Biased { .. } = self.config.policy {
            self.queue
                .schedule_after(self.config.cohort_rotation, Event::CohortRotate);
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    fn run(mut self) -> Result<RunReport, SimError> {
        let host_start = std::time::Instant::now();
        self.spawn_threads();
        self.dispatch_and_resume();

        let budget = self.config.budget;
        let timed_budget = budget.max_sim_time.is_some() || budget.max_host_ms.is_some();
        let mut wall = SimTime::ZERO;
        let mut outcome = RunOutcome::Ok;
        while self.mutators_left > 0 {
            let Some((_, event)) = self.queue.pop() else {
                let v = InvariantViolation {
                    kind: MonitorKind::QueueLiveness,
                    detail: format!(
                        "simulation deadlock: {} mutators unfinished with no pending events",
                        self.mutators_left
                    ),
                };
                if self.config.salvage {
                    outcome = RunOutcome::Quarantined(v.to_string());
                    break;
                }
                return Err(SimError::Invariant(v));
            };
            let processed = self.queue.popped_total();
            if processed > budget.max_events {
                outcome = RunOutcome::Truncated(scalesim_simkit::AbortReason::MaxEvents(
                    budget.max_events,
                ));
                break;
            }
            if self.chaos.panics_at(processed) {
                panic!("chaos: deliberate panic at event {processed}");
            }
            self.handle(event);
            wall = self.now();
            if let Some(v) = self.violation.take() {
                if self.config.salvage {
                    outcome = RunOutcome::Quarantined(v.to_string());
                    break;
                }
                return Err(SimError::Invariant(v));
            }
            if processed.is_multiple_of(BUDGET_CHECK_PERIOD) {
                // Watchdog cancellation is polled unconditionally at the
                // budget cadence — an attached token must interrupt runs
                // that never configured a timed budget.
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    outcome = RunOutcome::Truncated(AbortReason::Watchdog);
                    break;
                }
                if timed_budget {
                    let host_ms = host_start.elapsed().as_millis() as u64;
                    if let Some(reason) = budget.check(processed, wall, host_ms) {
                        outcome = RunOutcome::Truncated(reason);
                        break;
                    }
                }
            }
            if self.config.monitors && processed.is_multiple_of(MONITOR_SCAN_PERIOD) {
                self.scan_invariants();
                if let Some(v) = self.violation.take() {
                    if self.config.salvage {
                        outcome = RunOutcome::Quarantined(v.to_string());
                        break;
                    }
                    return Err(SimError::Invariant(v));
                }
            }
        }

        // Helpers (and an unfinished concurrent-GC background thread)
        // outlive the measurement window; stop them for clean accounting.
        for &tid in &self.helpers.clone() {
            if self.sched.state(tid).is_live() {
                self.sched.terminate(tid, wall);
            }
        }
        if let Some((tid, _)) = self.concurrent_cycle.take() {
            if self.sched.state(tid).is_live() {
                self.sched.terminate(tid, wall);
            }
        }

        // Right-censor objects still alive at VM shutdown.
        let clock = self.heap.clock();
        for (obj, seq) in std::mem::take(&mut self.permanents) {
            if self.heap.is_live(obj) {
                let lifespan = clock - self.heap.object(obj).birth;
                self.tracer.on_censored(seq, lifespan, clock);
            }
        }

        let per_thread: Vec<ThreadReport> = self
            .mutators
            .iter()
            .map(|&tid| ThreadReport {
                items_done: self.ctxs[tid.index()].items_done,
                times: *self.sched.times(tid),
                dispatches: self.sched.dispatches(tid),
                preemptions: self.sched.preemptions(tid),
            })
            .collect();
        let mutator_cpu: SimDuration = per_thread.iter().map(|t| t.times.running).sum();

        // Merge the per-subsystem recorders into one deterministic
        // timeline (the collector's must be taken before `into_log`
        // consumes it). Merge rank fixes tie order: sched, locks, gc,
        // runtime.
        let timeline = Timeline::merge(vec![
            self.sched.take_timeline(),
            self.locks.take_timeline(),
            self.collector.take_timeline(),
            std::mem::take(&mut self.timeline),
        ]);
        let log = self.collector.log();
        self.counters
            .set(CounterId::MinorGcs, log.count(GcKind::Minor) as u64);
        self.counters.set(
            CounterId::LocalMinorGcs,
            log.count(GcKind::LocalMinor) as u64,
        );
        self.counters
            .set(CounterId::FullGcs, log.count(GcKind::Full) as u64);
        self.counters.set(
            CounterId::ConcGcPhases,
            log.count(GcKind::ConcurrentOld) as u64,
        );
        self.counters
            .set(CounterId::EventsProcessed, self.queue.popped_total());
        self.counters
            .set(CounterId::TimelineDropped, timeline.dropped());

        if let Some(path) = &self.config.trace.path {
            if timeline.is_enabled() {
                if let Err(e) = write_atomic(std::path::Path::new(path), to_chrome_json(&timeline))
                {
                    eprintln!("scalesim: failed to write trace to {path}: {e}");
                }
            }
        }

        if !matches!(outcome, RunOutcome::Ok) {
            // The run ended with threads still queued on monitors
            // (budget truncation or quarantine): account their partial
            // waits so contention/acquisition equalities stay honest.
            self.locks.finalize(wall);
        }

        Ok(RunReport {
            app: self.app.name().to_owned(),
            threads: self.config.threads,
            cores: self.config.cores(),
            wall_time: wall.saturating_since(SimTime::ZERO),
            gc_time: self.collector.log().total_pause(),
            mutator_cpu,
            gc: self.collector.into_log(),
            locks: self.locks.report(),
            trace: self.tracer,
            heap: *self.heap.stats(),
            per_thread,
            events_processed: self.queue.popped_total(),
            counters: self.counters,
            timeline,
            host_ns: 0,
            outcome,
            server: None,
        })
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Resume(tid) => self.on_resume(tid),
            Event::StepDone(tid) => self.on_step_done(tid),
            Event::Quantum(tid) => self.on_quantum(tid),
            Event::HelperWake(tid) => self.on_helper_wake(tid),
            Event::CohortRotate => self.on_cohort_rotate(),
        }
    }

    fn dispatch_and_resume(&mut self) {
        for d in self.sched.dispatch(self.now()) {
            self.counters.inc(CounterId::Dispatches);
            self.queue.schedule_now(Event::Resume(d.thread));
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_resume(&mut self, tid: ThreadId) {
        if self.ctxs[tid.index()].done || self.sched.core_of(tid).is_none() {
            return; // stale
        }
        if self.ctxs[tid.index()].running.is_some() {
            return; // already mid-step
        }
        self.arm_quantum(tid);
        self.next_action(tid);
    }

    fn on_step_done(&mut self, tid: ThreadId) {
        let ctx = &mut self.ctxs[tid.index()];
        ctx.step_timer = None;
        let Some(running) = ctx.running.take() else {
            return; // cancelled late; defensive
        };
        match running.kind {
            StepKind::Compute => self.next_action(tid),
            StepKind::Critical(mon) => {
                self.release_monitor(mon, tid);
                self.next_action(tid);
            }
            StepKind::Fetch(mon) => {
                self.complete_fetch(tid);
                self.release_monitor(mon, tid);
                self.next_action(tid);
            }
            StepKind::HelperBurst => {
                self.disarm_quantum(tid);
                self.sched.block(tid, self.now(), BlockReason::Sleep);
                let period = self.config.helper_period;
                let sleep = exp_sample(&mut self.ctxs[tid.index()].rng, period);
                self.queue.schedule_after(sleep, Event::HelperWake(tid));
                self.dispatch_and_resume();
            }
            StepKind::CycleWork => {
                self.finish_concurrent_cycle(tid);
            }
        }
    }

    fn on_quantum(&mut self, tid: ThreadId) {
        self.ctxs[tid.index()].quantum_timer = None;
        if self.ctxs[tid.index()].done {
            return;
        }
        match self.sched.quantum_expired(tid, self.now()) {
            scalesim_sched::QuantumOutcome::Continued => {
                if self.sched.core_of(tid).is_some() {
                    self.arm_quantum(tid);
                }
            }
            scalesim_sched::QuantumOutcome::Preempted => {
                self.counters.inc(CounterId::Preemptions);
                self.pause_running_step(tid);
                self.dispatch_and_resume();
            }
        }
    }

    fn on_helper_wake(&mut self, tid: ThreadId) {
        if self.ctxs[tid.index()].done || !self.sched.state(tid).is_live() {
            return;
        }
        self.sched.unblock(tid, self.now());
        self.dispatch_and_resume();
    }

    fn on_cohort_rotate(&mut self) {
        self.active_cohort = (self.active_cohort + 1) % self.cohorts.max(1);
        self.queue
            .schedule_after(self.config.cohort_rotation, Event::CohortRotate);
        let now = self.now();
        for &tid in &self.mutators.clone() {
            let idx = tid.index();
            if self.ctxs[idx].parked && idx % self.cohorts == self.active_cohort {
                self.ctxs[idx].parked = false;
                self.sched.unblock(tid, now);
            }
        }
        self.dispatch_and_resume();
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_quantum(&mut self, tid: ThreadId) {
        let id = self
            .queue
            .schedule_after(self.sched.quantum(), Event::Quantum(tid));
        if let Some(old) = self.ctxs[tid.index()].quantum_timer.replace(id) {
            self.queue.cancel(old);
        }
    }

    fn disarm_quantum(&mut self, tid: ThreadId) {
        if let Some(id) = self.ctxs[tid.index()].quantum_timer.take() {
            self.queue.cancel(id);
        }
    }

    /// Schedules a timed step for a thread currently on a core.
    fn begin_step(&mut self, tid: ThreadId, kind: StepKind, duration: SimDuration) {
        let deadline = self.now() + duration;
        let id = self.queue.schedule_at(deadline, Event::StepDone(tid));
        let ctx = &mut self.ctxs[tid.index()];
        debug_assert!(ctx.running.is_none(), "{tid} began a step mid-step");
        ctx.running = Some(RunningStep { kind, deadline });
        ctx.step_timer = Some(id);
    }

    /// Interrupts a thread's running step, remembering the remainder.
    fn pause_running_step(&mut self, tid: ThreadId) {
        let now = self.now();
        let ctx = &mut self.ctxs[tid.index()];
        if let Some(r) = ctx.running.take() {
            if let Some(timer) = ctx.step_timer.take() {
                self.queue.cancel(timer);
            }
            ctx.paused = Some((r.kind, r.deadline.saturating_since(now)));
        }
    }

    // ------------------------------------------------------------------
    // The mutator state machine
    // ------------------------------------------------------------------

    fn next_action(&mut self, tid: ThreadId) {
        // Resume an interrupted step first.
        if let Some((kind, remaining)) = self.ctxs[tid.index()].paused.take() {
            self.begin_step(tid, kind, remaining);
            return;
        }
        // A monitor granted while we waited?
        if let Some(p) = self.ctxs[tid.index()].pending {
            if !p.granted {
                // A spurious wakeup: the thread reached a core without the
                // monitor handoff. Always checked inline — this is the
                // mutual-exclusion boundary.
                self.flag_violation(
                    MonitorKind::MonitorProtocol,
                    format!(
                        "{tid} resumed with an ungranted pending acquire on {}",
                        p.monitor
                    ),
                );
                return;
            }
            self.ctxs[tid.index()].pending = None;
            // The algorithm's handoff penalty (park/wake latency) lands
            // inside the granted hold: the monitor is owned while the
            // waiter finishes waking and refills its cache.
            let held = p.held + p.penalty;
            match p.purpose {
                Purpose::Fetch => {
                    self.begin_step(tid, StepKind::Fetch(p.monitor), held);
                }
                Purpose::Critical => {
                    self.ctxs[tid.index()]
                        .cursor
                        .as_mut()
                        .expect("critical without an item")
                        .next += 1;
                    self.begin_step(tid, StepKind::Critical(p.monitor), held);
                }
                Purpose::Merge => {
                    self.begin_step(tid, StepKind::Critical(p.monitor), held);
                }
            }
            return;
        }

        match self.ctxs[tid.index()].kind {
            ThreadKind::Helper => {
                let burst = {
                    let mean = self.config.helper_burst;
                    exp_sample(&mut self.ctxs[tid.index()].rng, mean)
                };
                self.begin_step(tid, StepKind::HelperBurst, burst);
                return;
            }
            ThreadKind::GcBackground => {
                debug_assert!(
                    self.concurrent_cycle.is_some(),
                    "background thread without a cycle"
                );
                // the cycle's CPU work was stashed as pause debt at spawn
                let duration = std::mem::take(&mut self.ctxs[tid.index()].local_pause_debt);
                self.begin_step(tid, StepKind::CycleWork, duration);
                return;
            }
            ThreadKind::Mutator => {}
        }

        loop {
            // Absorb thread-local heaplet-GC time before anything else.
            let debt = std::mem::take(&mut self.ctxs[tid.index()].local_pause_debt);
            if !debt.is_zero() {
                self.begin_step(tid, StepKind::Compute, debt);
                return;
            }
            if self.ctxs[tid.index()].cursor.is_none() {
                match self.try_get_work(tid) {
                    WorkOutcome::GotItem => continue,
                    WorkOutcome::StepScheduled | WorkOutcome::Blocked => return,
                    WorkOutcome::Finished => {
                        self.finish_thread(tid);
                        self.dispatch_and_resume();
                        return;
                    }
                }
            }

            // Execute steps until one needs simulated time or blocks.
            let cursor = self.ctxs[tid.index()].cursor.as_ref().expect("item");
            if cursor.next >= cursor.item.len() {
                self.finish_item(tid);
                continue;
            }
            let step = cursor.item.steps()[cursor.next];
            match step {
                Step::Alloc { bytes, death } => {
                    let (obj, seq) = self.do_alloc(tid, bytes);
                    let ctx = &mut self.ctxs[tid.index()];
                    match death {
                        DeathPoint::Slot(s) => {
                            let s = s as usize;
                            if ctx.slots.len() <= s {
                                ctx.slots.resize(s + 1, None);
                            }
                            ctx.slots[s] = Some((obj, seq));
                        }
                        DeathPoint::ItemEnd => ctx.item_end.push((obj, seq)),
                        DeathPoint::CarryItems(n) => ctx.carried.push((obj, seq, n)),
                        DeathPoint::Permanent => self.permanents.push((obj, seq)),
                    }
                    self.ctxs[tid.index()].cursor.as_mut().expect("item").next += 1;
                }
                Step::KillSlot(s) => {
                    let (obj, seq) = self.ctxs[tid.index()].slots[s as usize]
                        .take()
                        .expect("validated item: slot allocated before kill");
                    self.kill_object(obj, seq);
                    self.ctxs[tid.index()].cursor.as_mut().expect("item").next += 1;
                }
                Step::Compute(d) => {
                    self.ctxs[tid.index()].cursor.as_mut().expect("item").next += 1;
                    self.begin_step(tid, StepKind::Compute, d);
                    return;
                }
                Step::Critical { class, held } => {
                    let mon = self.pick_monitor(tid, class.0);
                    match self.locks.acquire(mon, tid, self.now()) {
                        Ok(AcquireOutcome::Acquired) => {
                            self.counters.inc(CounterId::LockAcquires);
                            self.ctxs[tid.index()].cursor.as_mut().expect("item").next += 1;
                            self.begin_step(tid, StepKind::Critical(mon), held);
                            return;
                        }
                        Ok(AcquireOutcome::Contended) => {
                            self.counters.inc(CounterId::LockContentions);
                            self.ctxs[tid.index()].pending = Some(PendingAcquire {
                                monitor: mon,
                                held,
                                purpose: Purpose::Critical,
                                granted: false,
                                penalty: SimDuration::ZERO,
                            });
                            self.block_on_monitor(tid);
                            return;
                        }
                        Err(misuse) => {
                            self.flag_violation(
                                MonitorKind::MonitorProtocol,
                                format!("{misuse} ({mon})"),
                            );
                            return;
                        }
                    }
                }
            }
        }
    }

    fn try_get_work(&mut self, tid: ThreadId) -> WorkOutcome {
        // Cooperative phase scheduling: a thread whose cohort is inactive
        // parks at the item boundary — "worker threads are scheduled at
        // the different phases of the execution" (paper SIV.1). Parking
        // here (never mid-item) means no locks are held and no in-flight
        // objects are kept alive while parked.
        if self.cohorts > 1
            && tid.index() % self.cohorts != self.active_cohort
            && self.has_more_work(tid)
        {
            self.ctxs[tid.index()].parked = true;
            self.disarm_quantum(tid);
            self.sched.block(tid, self.now(), BlockReason::Sleep);
            self.dispatch_and_resume();
            return WorkOutcome::Blocked;
        }
        match self.app.distribution() {
            Distribution::StaticSkewed { .. } => {
                let ctx = &mut self.ctxs[tid.index()];
                if ctx.assigned_remaining == 0 {
                    return WorkOutcome::Finished;
                }
                ctx.assigned_remaining -= 1;
                self.start_item(tid);
                WorkOutcome::GotItem
            }
            Distribution::GuidedQueue {
                lock,
                dispatch,
                merge,
                ..
            } => {
                if self.ctxs[tid.index()].batch_remaining > 0 {
                    self.ctxs[tid.index()].batch_remaining -= 1;
                    self.start_item(tid);
                    return WorkOutcome::GotItem;
                }
                // The batch is drained: merge its results under the shared
                // merge lock before returning to the queue.
                if self.ctxs[tid.index()].merge_pending {
                    self.ctxs[tid.index()].merge_pending = false;
                    if let Some(m) = merge {
                        let mon = self.class_monitors[m.class.0][0];
                        let held = {
                            let rng = &mut self.ctxs[tid.index()].rng;
                            SimDuration::from_nanos(rng.gen_range(m.held_ns.0..=m.held_ns.1))
                        };
                        match self.locks.acquire(mon, tid, self.now()) {
                            Ok(AcquireOutcome::Acquired) => {
                                self.counters.inc(CounterId::LockAcquires);
                                self.begin_step(tid, StepKind::Critical(mon), held);
                                return WorkOutcome::StepScheduled;
                            }
                            Ok(AcquireOutcome::Contended) => {
                                self.counters.inc(CounterId::LockContentions);
                                self.ctxs[tid.index()].pending = Some(PendingAcquire {
                                    monitor: mon,
                                    held,
                                    purpose: Purpose::Merge,
                                    granted: false,
                                    penalty: SimDuration::ZERO,
                                });
                                self.block_on_monitor(tid);
                                return WorkOutcome::Blocked;
                            }
                            Err(misuse) => {
                                self.flag_violation(
                                    MonitorKind::MonitorProtocol,
                                    format!("{misuse} ({mon})"),
                                );
                                return WorkOutcome::Blocked;
                            }
                        }
                    }
                }
                if self.shared_remaining == 0 {
                    return WorkOutcome::Finished;
                }
                let mon = self.class_monitors[lock.0][0];
                let dispatch = *dispatch;
                match self.locks.acquire(mon, tid, self.now()) {
                    Ok(AcquireOutcome::Acquired) => {
                        self.counters.inc(CounterId::LockAcquires);
                        self.begin_step(tid, StepKind::Fetch(mon), dispatch);
                        WorkOutcome::StepScheduled
                    }
                    Ok(AcquireOutcome::Contended) => {
                        self.counters.inc(CounterId::LockContentions);
                        self.ctxs[tid.index()].pending = Some(PendingAcquire {
                            monitor: mon,
                            held: dispatch,
                            purpose: Purpose::Fetch,
                            granted: false,
                            penalty: SimDuration::ZERO,
                        });
                        self.block_on_monitor(tid);
                        WorkOutcome::Blocked
                    }
                    Err(misuse) => {
                        self.flag_violation(
                            MonitorKind::MonitorProtocol,
                            format!("{misuse} ({mon})"),
                        );
                        WorkOutcome::Blocked
                    }
                }
            }
        }
    }

    /// Computes the guided batch at fetch completion: `max(1, remaining /
    /// (factor * workers))` items, clamped to what is left.
    fn complete_fetch(&mut self, tid: ThreadId) {
        let Distribution::GuidedQueue { factor, .. } = self.app.distribution() else {
            unreachable!("fetch completed under a static distribution");
        };
        let batch = if self.shared_remaining == 0 {
            0
        } else {
            let guided =
                (self.shared_remaining as f64 / (factor * self.workers as f64)).ceil() as u64;
            guided.clamp(1, self.shared_remaining)
        };
        self.shared_remaining -= batch;
        let has_merge = matches!(
            self.app.distribution(),
            Distribution::GuidedQueue { merge: Some(_), .. }
        );
        let ctx = &mut self.ctxs[tid.index()];
        ctx.batch_remaining = batch;
        ctx.merge_pending = batch > 0 && has_merge;
    }

    fn start_item(&mut self, tid: ThreadId) {
        let item = {
            let rng = &mut self.ctxs[tid.index()].rng;
            self.app.make_item(rng)
        };
        let ctx = &mut self.ctxs[tid.index()];
        ctx.slots.clear();
        ctx.cursor = Some(ItemCursor { item, next: 0 });
    }

    fn finish_item(&mut self, tid: ThreadId) {
        let (item_end, expired) = {
            let ctx = &mut self.ctxs[tid.index()];
            ctx.cursor = None;
            ctx.items_done += 1;
            debug_assert!(ctx.slots.iter().all(Option::is_none), "leaked slot object");
            let item_end = std::mem::take(&mut ctx.item_end);
            let mut expired = Vec::new();
            ctx.carried.retain_mut(|(obj, seq, left)| {
                if *left <= 1 {
                    expired.push((*obj, *seq));
                    false
                } else {
                    *left -= 1;
                    true
                }
            });
            (item_end, expired)
        };
        for (obj, seq) in item_end.into_iter().chain(expired) {
            self.kill_object(obj, seq);
        }
    }

    fn finish_thread(&mut self, tid: ThreadId) {
        let carried = std::mem::take(&mut self.ctxs[tid.index()].carried);
        for (obj, seq, _) in carried {
            self.kill_object(obj, seq);
        }
        self.disarm_quantum(tid);
        let ctx = &mut self.ctxs[tid.index()];
        debug_assert!(ctx.running.is_none() && ctx.paused.is_none());
        ctx.done = true;
        self.sched.terminate(tid, self.now());
        if self.ctxs[tid.index()].kind == ThreadKind::Mutator {
            self.mutators_left -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Allocation & GC
    // ------------------------------------------------------------------

    fn do_alloc(&mut self, tid: ThreadId, bytes: u64) -> (ObjectId, ObjSeq) {
        for attempt in 0..2 {
            match self.heap.alloc(tid, bytes) {
                AllocResult::Ok(obj) => {
                    self.counters.inc(CounterId::Allocations);
                    self.counters.add(CounterId::AllocBytes, bytes);
                    let seq = self.tracer.on_alloc(tid.index(), bytes, self.heap.clock());
                    return (obj, seq);
                }
                AllocResult::NurseryFull { region } => {
                    assert_eq!(attempt, 0, "allocation failed after a collection");
                    if self.config.heaplets {
                        self.run_gc_local(region, tid);
                    } else {
                        self.run_gc(region);
                    }
                }
            }
        }
        unreachable!("two allocation attempts always suffice")
    }

    fn run_gc(&mut self, region: usize) {
        let live = self.sched.live_count();
        let now = self.now();
        let pre_used = self.heap.region_used(region) + self.heap.mature_used();
        self.timeline.sample(EventKind::HeapUsed, 0, now, pre_used);
        let mut pause = self
            .collector
            .collect_minor(&mut self.heap, region, live, now);
        if self.chaos.fires(FaultClass::GcStall) {
            // Injected fault: a GC worker stalls at the safepoint and the
            // whole pause stretches. The pause-bound monitor must catch
            // it (at test-sized stall factors).
            let extra = pause.mul_f64(self.chaos.config().gc_stall_factor);
            self.counters.inc(CounterId::ChaosInjections);
            self.timeline
                .instant(EventKind::ChaosGcStall, 0, now, extra.as_nanos());
            pause += extra;
        }
        let post_used = self.heap.region_used(region) + self.heap.mature_used();
        self.timeline
            .sample(EventKind::HeapUsed, 0, now.saturating_add(pause), post_used);
        self.check_collection_invariants(pause, live);
        self.apply_stw(pause);
        self.maybe_start_concurrent_cycle();
        if let Some(goal) = self.config.pause_goal {
            // Feed the observed pause back into the nursery size
            // (HotSpot AdaptiveSizePolicy), discounting the irreducible
            // safepoint floor that nursery size cannot influence.
            let floor = SimDuration::from_nanos(self.collector.model().pause_floor_ns(live) as u64);
            let sizer = AdaptiveSizer::new(goal);
            let next = sizer.next_capacity(self.heap.region_capacity(region), pause, floor);
            // Cap growth at half the heap (HotSpot's NewRatio-style bound)
            // so the mature space always keeps promotion headroom.
            let next = next.min(self.heap.config().total_bytes() / 2);
            self.heap.resize_region(region, next);
        }
    }

    /// Collection-boundary invariant checks: heap conservation (allocated
    /// = live + collected, consistent per-space accounting) and the GC
    /// pause bound — no stop-the-world pause can exceed twice the model
    /// cost of evacuating *and* compacting the entire heap, so a stalled
    /// GC worker shows up immediately.
    fn check_collection_invariants(&mut self, pause: SimDuration, live_threads: usize) {
        if !self.config.monitors || self.violation.is_some() {
            return;
        }
        if let Err(detail) = self.heap.check_conservation() {
            self.flag_violation(MonitorKind::HeapConservation, detail);
            return;
        }
        let model = self.collector.model();
        let total = self.heap.config().total_bytes();
        let ceiling_ns = 2.0
            * (model.minor_pause_ns(total, live_threads)
                + model.full_pause_ns(total, live_threads));
        if pause.as_nanos() as f64 > ceiling_ns {
            self.flag_violation(
                MonitorKind::GcPauseBound,
                format!(
                    "GC pause {pause} exceeds the physical ceiling {} for a {total}-byte heap",
                    SimDuration::from_nanos(ceiling_ns as u64)
                ),
            );
        }
    }

    /// Thread-local heaplet collection: the owner absorbs the pause as
    /// compute-time debt; only an escalated full collection stops the
    /// world.
    fn run_gc_local(&mut self, region: usize, tid: ThreadId) {
        let live = self.sched.live_count();
        let now = self.now();
        let pre_used = self.heap.region_used(region) + self.heap.mature_used();
        self.timeline.sample(EventKind::HeapUsed, 0, now, pre_used);
        let out = self
            .collector
            .collect_minor_local(&mut self.heap, region, live, now);
        let post_used = self.heap.region_used(region) + self.heap.mature_used();
        self.timeline.sample(
            EventKind::HeapUsed,
            0,
            now.saturating_add(out.local_pause.max(out.stw_pause)),
            post_used,
        );
        self.check_collection_invariants(out.local_pause.max(out.stw_pause), live);
        self.ctxs[tid.index()].local_pause_debt += out.local_pause;
        if !out.stw_pause.is_zero() {
            self.apply_stw(out.stw_pause);
        }
        self.maybe_start_concurrent_cycle();
    }

    /// Kicks off a mostly-concurrent old-gen cycle when occupancy calls
    /// for one: a short initial-mark STW pause, then a fresh background
    /// thread that competes with mutators for a core while it marks and
    /// sweeps.
    fn maybe_start_concurrent_cycle(&mut self) {
        if self.config.old_gen != OldGenPolicy::MostlyConcurrent
            || self.concurrent_cycle.is_some()
            || !self.collector.wants_concurrent_cycle(&self.heap)
        {
            return;
        }
        let live = self.sched.live_count();
        let now = self.now();
        let (initial, work) = self.collector.begin_concurrent_cycle(&self.heap, live, now);
        self.apply_stw(initial);

        let tid = self.sched.register(self.now());
        let rngs = RngFactory::new(self.config.seed);
        let mut ctx = ThreadCtx::new(
            ThreadKind::GcBackground,
            rngs.stream("gc-background", tid.index() as u64),
        );
        // stash the cycle's CPU work where next_action will find it
        ctx.local_pause_debt = work;
        self.ctxs.push(ctx);
        self.concurrent_cycle = Some((tid, initial));
        self.sched.start(tid, self.now());
        self.dispatch_and_resume();
    }

    /// Completes the cycle: remark STW pause, sweep, retire the
    /// background thread.
    fn finish_concurrent_cycle(&mut self, tid: ThreadId) {
        let (cycle_tid, _initial) = self
            .concurrent_cycle
            .take()
            .expect("cycle work finished without a cycle");
        debug_assert_eq!(cycle_tid, tid);
        let live = self.sched.live_count();
        let now = self.now();
        let remark = self
            .collector
            .finish_concurrent_cycle(&mut self.heap, live, now);
        self.apply_stw(remark);
        self.disarm_quantum(tid);
        self.ctxs[tid.index()].done = true;
        self.sched.terminate(tid, self.now());
        self.dispatch_and_resume();
    }

    fn apply_stw(&mut self, pause: SimDuration) {
        let now = self.now();
        self.counters.inc(CounterId::StwPauses);
        self.queue.shift_all(pause);
        self.sched.apply_stw_pause(pause, now);
        // Cached step deadlines move with the world.
        for ctx in &mut self.ctxs {
            if let Some(r) = &mut ctx.running {
                r.deadline = r.deadline.saturating_add(pause);
            }
        }
        // A stop-the-world pause is a safepoint: every mutator is parked at
        // a known boundary, so this is the cheapest moment to cross-check
        // scheduler and monitor state.
        if self.config.monitors {
            self.scan_invariants();
        }
    }

    /// Whether the thread still has (or can still get) work.
    fn has_more_work(&self, tid: ThreadId) -> bool {
        let ctx = &self.ctxs[tid.index()];
        match self.app.distribution() {
            Distribution::StaticSkewed { .. } => ctx.assigned_remaining > 0,
            Distribution::GuidedQueue { .. } => {
                ctx.batch_remaining > 0 || ctx.merge_pending || self.shared_remaining > 0
            }
        }
    }

    fn kill_object(&mut self, obj: ObjectId, seq: ObjSeq) {
        self.counters.inc(CounterId::ObjectDeaths);
        let death = self.heap.kill(obj);
        self.tracer.on_death(seq, death.lifespan, self.heap.clock());
    }

    // ------------------------------------------------------------------
    // Locking
    // ------------------------------------------------------------------

    fn pick_monitor(&mut self, tid: ThreadId, class: usize) -> MonitorId {
        let instances = &self.class_monitors[class];
        if instances.len() == 1 {
            instances[0]
        } else {
            let i = self.ctxs[tid.index()].rng.gen_range(0..instances.len());
            instances[i]
        }
    }

    fn block_on_monitor(&mut self, tid: ThreadId) {
        self.disarm_quantum(tid);
        self.sched.block(tid, self.now(), BlockReason::Monitor);
        if self.chaos.fires(FaultClass::SpuriousWakeup) {
            // Injected fault: the waiter becomes runnable without the
            // monitor handoff, as a broken park/unpark would produce. The
            // inline protocol check in `next_action` must catch it.
            self.counters.inc(CounterId::ChaosInjections);
            let now = self.now();
            self.timeline
                .instant(EventKind::ChaosSpuriousWakeup, 0, now, tid.index() as u64);
            self.sched.unblock(tid, self.now());
        }
        self.dispatch_and_resume();
    }

    fn release_monitor(&mut self, mon: MonitorId, tid: ThreadId) {
        let grant = match self.locks.release(mon, tid, self.now()) {
            Ok(grant) => grant,
            Err(misuse) => {
                self.flag_violation(MonitorKind::MonitorProtocol, format!("{misuse} ({mon})"));
                return;
            }
        };
        if let Some(grant) = grant {
            let next = grant.next;
            self.counters.inc(CounterId::LockAcquires);
            let p = self.ctxs[next.index()]
                .pending
                .as_mut()
                .expect("granted thread has a pending acquire");
            debug_assert_eq!(p.monitor, mon);
            p.granted = true;
            p.penalty = grant.penalty;
            if self.chaos.fires(FaultClass::DropWakeup) {
                // Injected fault: the handoff is recorded but the waiter
                // is never made runnable — a classic lost wakeup. The
                // scheduler monitor (or the run budget) must catch it.
                self.counters.inc(CounterId::ChaosInjections);
                let now = self.now();
                self.timeline
                    .instant(EventKind::ChaosDropWakeup, 0, now, next.index() as u64);
                return;
            }
            // A prior spurious wakeup may have made the thread runnable
            // already; only a still-blocked waiter needs the unblock.
            if matches!(self.sched.state(next), ThreadState::Blocked(_)) {
                self.sched.unblock(next, self.now());
            }
            self.dispatch_and_resume();
        }
    }

    // ------------------------------------------------------------------
    // Invariant monitors
    // ------------------------------------------------------------------

    /// The periodic full scan: scheduler cross-structure consistency plus
    /// scheduler↔monitor-table agreement. Runs every
    /// [`MONITOR_SCAN_PERIOD`] events and at stop-the-world safepoints
    /// when `JvmConfig::monitors` is on.
    fn scan_invariants(&mut self) {
        if self.violation.is_some() {
            return;
        }
        self.counters.inc(CounterId::MonitorScans);
        if let Err(detail) = self.sched.sanity_check() {
            self.flag_violation(MonitorKind::Scheduler, detail);
            return;
        }
        for i in 0..self.ctxs.len() {
            let tid = ThreadId::new(i);
            let Some(p) = self.ctxs[i].pending else {
                continue;
            };
            let state = self.sched.state(tid);
            if p.granted {
                // A granted waiter is unblocked in the same event that
                // granted it; still being blocked means a lost wakeup.
                if matches!(state, ThreadState::Blocked(_)) {
                    self.flag_violation(
                        MonitorKind::Scheduler,
                        format!(
                            "lost wakeup: {tid} was granted {} but is still blocked",
                            p.monitor
                        ),
                    );
                    return;
                }
                // The handoff made the thread the owner.
                if self.locks.owner(p.monitor) != Some(tid) {
                    self.flag_violation(
                        MonitorKind::MonitorProtocol,
                        format!("{tid} holds a grant for {} it does not own", p.monitor),
                    );
                    return;
                }
            } else {
                // An ungranted waiter stays blocked until the handoff; any
                // other state means a spurious wakeup slipped through.
                if !matches!(state, ThreadState::Blocked(_)) {
                    self.flag_violation(
                        MonitorKind::MonitorProtocol,
                        format!(
                            "spurious wakeup: {tid} is {state} while waiting ungranted on {}",
                            p.monitor
                        ),
                    );
                    return;
                }
                // An ungranted waiter must sit in the monitor's FIFO queue
                // behind a live owner.
                if !self.locks.is_waiting(p.monitor, tid) {
                    self.flag_violation(
                        MonitorKind::MonitorProtocol,
                        format!("{tid} blocks on {} but is not in its wait queue", p.monitor),
                    );
                    return;
                }
                if self.locks.owner(p.monitor).is_none() {
                    self.flag_violation(
                        MonitorKind::MonitorProtocol,
                        format!("{tid} waits on {} although it is unowned", p.monitor),
                    );
                    return;
                }
            }
        }
        // Mutual exclusion: a thread inside a critical step owns the lock.
        for i in 0..self.ctxs.len() {
            let tid = ThreadId::new(i);
            if let Some(r) = &self.ctxs[i].running {
                if let StepKind::Critical(mon) | StepKind::Fetch(mon) = r.kind {
                    if self.locks.owner(mon) != Some(tid) {
                        self.flag_violation(
                            MonitorKind::MonitorProtocol,
                            format!("{tid} executes a critical section without owning {mon}"),
                        );
                        return;
                    }
                }
            }
        }
    }
}

/// Exponential sample with the given mean (for helper sleep/burst times).
fn exp_sample(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(1e-12f64..1.0);
    SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JvmConfig;
    use scalesim_gc::GcKind;
    use scalesim_workloads::{eclipse, h2, jython, xalan, SyntheticApp};

    fn quick(app: &SyntheticApp, threads: usize) -> RunReport {
        let cfg = JvmConfig::builder()
            .threads(threads)
            .seed(1)
            .build()
            .unwrap();
        Jvm::new(cfg).run(&app.scaled(0.02)).unwrap()
    }

    #[test]
    fn single_thread_run_completes_all_items() {
        let app = xalan().scaled(0.02);
        let report = Jvm::new(JvmConfig::builder().threads(1).build().unwrap())
            .run(&app)
            .unwrap();
        assert_eq!(report.total_items(), app.total_items());
        assert!(report.wall_time.as_nanos() > 0);
        assert!(report.mutator_cpu.as_nanos() > 0);
    }

    #[test]
    fn multithreaded_run_completes_all_items() {
        let app = xalan().scaled(0.02);
        let report = quick(&xalan(), 8);
        assert_eq!(report.total_items(), app.total_items());
        assert_eq!(report.per_thread.len(), 8);
    }

    #[test]
    fn scalable_app_speeds_up() {
        let t1 = quick(&xalan(), 1);
        let t8 = quick(&xalan(), 8);
        let speedup = t1.wall_time.as_secs_f64() / t8.wall_time.as_secs_f64();
        assert!(speedup > 3.0, "xalan 8-thread speedup only {speedup:.2}");
    }

    #[test]
    fn non_scalable_app_does_not_speed_up_much() {
        let t1 = quick(&h2(), 1);
        let t8 = quick(&h2(), 8);
        let speedup = t1.wall_time.as_secs_f64() / t8.wall_time.as_secs_f64();
        assert!(speedup < 2.0, "h2 8-thread speedup {speedup:.2} too high");
    }

    #[test]
    fn gc_happens_and_is_logged() {
        let report = quick(&xalan(), 4);
        assert!(report.gc.count(GcKind::Minor) > 0, "no minor GC occurred");
        assert!(report.gc_time.as_nanos() > 0);
        assert!(report.gc_time < report.wall_time);
    }

    #[test]
    fn lock_profile_reports_app_classes() {
        let report = quick(&xalan(), 4);
        assert!(report.locks.acquisitions_of("workqueue") > 0);
        assert!(report.locks.acquisitions_of("dtm-cache") > 0);
    }

    #[test]
    fn trace_balances_allocations_and_deaths() {
        let report = quick(&xalan(), 4);
        assert!(report.trace.allocations() > 0);
        assert_eq!(
            report.trace.allocations(),
            report.trace.deaths() + report.trace.censored(),
            "every object dies or is censored"
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = quick(&xalan(), 4);
        let b = quick(&xalan(), 4);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.locks.total.contentions, b.locks.total.contentions);
        assert_eq!(a.trace.allocations(), b.trace.allocations());
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seeds_differ() {
        let app = xalan().scaled(0.02);
        let a = Jvm::new(JvmConfig::builder().threads(4).seed(1).build().unwrap())
            .run(&app)
            .unwrap();
        let b = Jvm::new(JvmConfig::builder().threads(4).seed(2).build().unwrap())
            .run(&app)
            .unwrap();
        assert_ne!(a.wall_time, b.wall_time);
    }

    #[test]
    fn jython_concentrates_work_in_four_threads() {
        let report = quick(&jython(), 16);
        assert!(report.threads_for_90pct_work() <= 4);
        let idle: u64 = report.per_thread[4..].iter().map(|t| t.items_done).sum();
        assert_eq!(idle, 0, "threads beyond the cap received work");
    }

    #[test]
    fn eclipse_work_is_skewed() {
        let report = quick(&eclipse(), 8);
        let shares = report.work_shares();
        assert!(shares[0] > shares[3], "{shares:?}");
    }

    #[test]
    fn mutator_wall_plus_gc_equals_wall() {
        let report = quick(&xalan(), 4);
        assert_eq!(report.mutator_wall() + report.gc_time, report.wall_time);
    }

    #[test]
    fn heaplets_mode_runs_and_collects_per_region() {
        let cfg = JvmConfig::builder()
            .threads(4)
            .heaplets(true)
            .seed(1)
            .build()
            .unwrap();
        let report = Jvm::new(cfg).run(&xalan().scaled(0.02)).unwrap();
        assert!(report.gc.collections() > 0);
        let regions: std::collections::HashSet<usize> = report
            .gc
            .events()
            .iter()
            .filter(|e| e.kind == GcKind::LocalMinor)
            .map(|e| e.region)
            .collect();
        assert!(regions.len() > 1, "only one heaplet was ever collected");
        assert_eq!(
            report.gc.count(GcKind::Minor),
            0,
            "heaplet mode never runs global minors"
        );
    }

    #[test]
    fn biased_policy_completes_work() {
        let cfg = JvmConfig::builder()
            .threads(8)
            .policy(SchedPolicy::Biased { cohorts: 2 })
            .seed(1)
            .build()
            .unwrap();
        let app = xalan().scaled(0.02);
        let report = Jvm::new(cfg).run(&app).unwrap();
        assert_eq!(report.total_items(), app.total_items());
    }

    #[test]
    fn helper_threads_are_excluded_from_mutator_reports() {
        let report = quick(&xalan(), 4);
        assert_eq!(report.per_thread.len(), 4);
    }

    #[test]
    fn concurrent_old_gen_replaces_full_collections() {
        use crate::config::OldGenPolicy;
        // full-scale xalan at 48 threads: promotion pressure produces
        // full GCs in the baseline (see Figure 2)
        let app = xalan();
        let stw = Jvm::new(JvmConfig::builder().threads(48).seed(1).build().unwrap())
            .run(&app)
            .unwrap();
        let conc = Jvm::new(
            JvmConfig::builder()
                .threads(48)
                .seed(1)
                .old_gen(OldGenPolicy::MostlyConcurrent)
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap();
        assert_eq!(conc.total_items(), app.total_items());
        assert!(
            stw.gc.count(GcKind::Full) > 0,
            "baseline must have full GCs for the comparison to mean anything"
        );
        let cycles = conc.gc.count(GcKind::ConcurrentOld);
        let failures = conc.gc.count(GcKind::Full);
        assert!(
            cycles > 0 || failures > 0,
            "occupancy pressure must trigger old-gen work"
        );
        // The win is the worst old-gen pause: each concurrent STW phase
        // (initial mark / remark) is far shorter than a full collection.
        let max_of = |r: &crate::RunReport, kind: GcKind| {
            r.gc.events()
                .iter()
                .filter(|e| e.kind == kind)
                .map(|e| e.pause)
                .max()
                .unwrap_or(SimDuration::ZERO)
        };
        let worst_full = max_of(&stw, GcKind::Full);
        let worst_phase = max_of(&conc, GcKind::ConcurrentOld);
        assert!(
            worst_phase < worst_full,
            "worst concurrent phase {worst_phase} vs worst full GC {worst_full}"
        );
    }

    #[test]
    fn permanent_objects_are_censored_at_shutdown() {
        // every app allocates some permanent objects with nonzero
        // probability; they must be right-censored, never leaked
        let report = quick(&xalan(), 4);
        assert!(report.trace.censored() > 0, "xalan allocates permanents");
        assert_eq!(
            report.trace.allocations(),
            report.trace.deaths() + report.trace.censored()
        );
    }

    #[test]
    fn biased_cohorts_park_and_stagger_threads() {
        let cfg = JvmConfig::builder()
            .threads(8)
            .policy(SchedPolicy::Biased { cohorts: 2 })
            .seed(1)
            .build()
            .unwrap();
        let app = xalan().scaled(0.05);
        let biased = Jvm::new(cfg).run(&app).unwrap();
        let fair = Jvm::new(JvmConfig::builder().threads(8).seed(1).build().unwrap())
            .run(&app)
            .unwrap();
        // parked threads accumulate sleep-state time that fair never has
        let sleep: SimDuration = biased
            .per_thread
            .iter()
            .map(|t| t.times.blocked_sleep)
            .sum();
        assert!(sleep.as_nanos() > 0, "cohort parking must show up as sleep");
        assert!(biased.wall_time > fair.wall_time);
        // but work and objects are conserved identically
        assert_eq!(biased.total_items(), fair.total_items());
    }

    #[test]
    fn heaplet_local_pause_debt_is_charged_to_the_allocating_thread() {
        let cfg = JvmConfig::builder()
            .threads(4)
            .heaplets(true)
            .seed(1)
            .build()
            .unwrap();
        let app = xalan().scaled(0.05);
        let report = Jvm::new(cfg).run(&app).unwrap();
        let local_pause = report.gc.pause_of(GcKind::LocalMinor);
        assert!(local_pause.as_nanos() > 0);
        // local collection time rides inside mutator running time (the
        // owner thread does the copying), so aggregate running exceeds
        // the items' pure CPU demand
        assert!(report.mutator_cpu > local_pause);
    }

    #[test]
    fn gc_share_is_monotone_across_big_thread_jumps() {
        // the core Figure-2 relation at unit-test scale
        let shares: Vec<f64> = [2usize, 12, 48]
            .iter()
            .map(|&t| quick(&xalan(), t).gc_share())
            .collect();
        assert!(shares.windows(2).all(|w| w[1] > w[0]), "{shares:?}");
    }

    #[test]
    fn more_threads_than_cores_still_completes() {
        let cfg = JvmConfig::builder()
            .threads(6)
            .cores(2)
            .seed(1)
            .build()
            .unwrap();
        let app = xalan().scaled(0.01);
        let report = Jvm::new(cfg).run(&app).unwrap();
        assert_eq!(report.total_items(), app.total_items());
        let runnable_wait: SimDuration = report
            .per_thread
            .iter()
            .map(|t| t.times.runnable_wait)
            .sum();
        assert!(
            runnable_wait > SimDuration::ZERO,
            "6 threads on 2 cores must wait for cores"
        );
    }

    #[test]
    fn every_lock_algorithm_completes_contended_runs() {
        let app = xalan().scaled(0.02);
        let fifo_items = {
            let cfg = JvmConfig::builder()
                .threads(8)
                .seed(1)
                .lock_alg(scalesim_sync::LockAlg::Fifo)
                .build()
                .unwrap();
            Jvm::new(cfg).run(&app).unwrap().total_items()
        };
        for alg in scalesim_sync::LockAlg::ALL {
            let cfg = JvmConfig::builder()
                .threads(8)
                .seed(1)
                .lock_alg(alg)
                .build()
                .unwrap();
            let report = Jvm::new(cfg).run(&app).unwrap();
            assert!(matches!(report.outcome, RunOutcome::Ok), "{alg}");
            // Work conservation is algorithm-independent: every item
            // completes no matter who gets the lock when.
            assert_eq!(report.total_items(), fifo_items, "{alg}");
            assert!(report.locks.total.contentions > 0, "{alg}: uncontended");
        }
    }

    #[test]
    fn every_lock_algorithm_quarantines_under_wakeup_drops() {
        // Chaos eventual-admission property: dropped wakeups must never
        // panic or hang any algorithm — the invariant monitors (or the
        // event budget) catch the lost handoff and the salvaged run
        // finalizes as a quarantined/truncated report.
        use scalesim_simkit::ChaosConfig;
        for alg in scalesim_sync::LockAlg::ALL {
            let chaos = ChaosConfig {
                drop_wakeup_period: 64,
                ..ChaosConfig::default()
            };
            let cfg = JvmConfig::builder()
                .threads(8)
                .seed(1)
                .lock_alg(alg)
                .chaos(chaos)
                .salvage(true)
                .build()
                .unwrap();
            let report = Jvm::new(cfg).run(&xalan().scaled(0.02)).unwrap();
            assert!(
                !matches!(report.outcome, RunOutcome::Ok),
                "{alg}: a dropped wakeup must not finalize clean"
            );
        }
    }
}
