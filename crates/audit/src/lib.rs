//! # scalesim-audit
//!
//! Offline concurrency auditor over the deterministic timelines recorded by
//! [`scalesim-trace`](scalesim_trace). Where the inline invariant monitors
//! (PR 2) catch *local* protocol violations as they happen, this crate is
//! the post-hoc analysis pass: it consumes a finished run's merged
//! [`Timeline`] and [`Counters`] and checks that the recorded schedule is
//! globally consistent with the concurrency semantics the simulator models.
//!
//! Three checks, in the spirit of dynamic lock-order and vector-clock
//! analyses:
//!
//! * [`Check::LockOrder`] — builds a **lock-order graph** from nested
//!   monitor hold spans (an edge `A → B` whenever some thread acquired `B`
//!   while holding `A`) and reports every cycle as a potential deadlock,
//!   with the owning thread and sim-time of the first offending nested
//!   acquisition.
//! * [`Check::WaitPairing`] — audits **wait/notify pairing**: every
//!   [`MonitorEnqueue`](scalesim_trace::EventKind::MonitorEnqueue) instant
//!   must be closed by a matching
//!   [`MonitorWait`](scalesim_trace::EventKind::MonitorWait) span, and
//!   every granted waiter must actually resume. Dangling waits are flagged
//!   as lost wakeups with owner attribution. Findings are cross-validated
//!   against the chaos instants in the same timeline, so an *injected*
//!   dropped wakeup is an **expected** finding, not a false positive.
//! * [`Check::HappensBefore`] — replays the schedule's **happens-before
//!   order** with per-thread logical clocks joined over monitor handoff
//!   edges — the FastTrack-style epoch form of vector-clock replay —
//!   (mutual exclusion per monitor, no grant before the matching release)
//!   and verifies the counters registry,
//!   safepoint spans and heap-epoch samples are consistent with the
//!   recorded ordering (e.g. every stop-the-world pause is explained by a
//!   GC span plus any injected stall, and the
//!   [`LockContentions`](scalesim_trace::CounterId::LockContentions)
//!   counter equals the number of recorded enqueues).
//!
//! On a finding, the **divergence bisector** ([`divergence`]) delta-debugs
//! the event stream: it binary-searches for the shortest timeline prefix
//! that still reproduces the finding, so the *first divergent event* can be
//! named in a repro artifact.
//!
//! The auditor is pure (no I/O, no simulation): `audit(&timeline,
//! &counters, aborted)` is a deterministic function of its inputs, so
//! finding fingerprints are stable across runs and hosts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bisect;
mod consistency;
mod lockgraph;
mod pairing;

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use scalesim_simkit::SimTime;
use scalesim_trace::{Counters, EventKind, Timeline, TimelineEvent};

pub use bisect::divergence;

/// Which offline analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Lock-order graph cycle detection over nested hold spans.
    LockOrder,
    /// Wait/notify pairing audit over enqueue instants and wait spans.
    WaitPairing,
    /// Happens-before replay: handoff ordering, safepoint reconciliation,
    /// counter and heap-sample consistency.
    HappensBefore,
}

impl Check {
    /// Stable name used in reports, fingerprints and repro artifacts.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Check::LockOrder => "lock-order",
            Check::WaitPairing => "wait-pairing",
            Check::HappensBefore => "happens-before",
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One audit finding: a place where the recorded schedule is inconsistent
/// with (or, for injected faults, deliberately deviates from) the modelled
/// concurrency semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The analysis that produced the finding.
    pub check: Check,
    /// Stable finding class (e.g. `"lost-wakeup"`, `"lock-cycle"`,
    /// `"gc-stall"`); part of the fingerprint.
    pub class: &'static str,
    /// Human-readable explanation with the concrete evidence.
    pub detail: String,
    /// Sim-time the finding anchors to (first evidence event).
    pub at: SimTime,
    /// Track (monitor index, thread index or GC region) of the evidence.
    pub track: u32,
    /// Attributed thread index, when the finding names one.
    pub thread: Option<u64>,
    /// `true` when the finding is explained by an injected chaos fault (or
    /// by the run having aborted): an expected detection, not a bug.
    pub expected: bool,
}

impl Finding {
    /// Deterministic fingerprint over the finding's stable coordinates
    /// (check, class, track, thread, sim-time). Uses `DefaultHasher::new()`
    /// — fixed keys, same convention as the sweep memo keys — so the value
    /// is reproducible across runs and processes.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.check.name().hash(&mut h);
        self.class.hash(&mut h);
        self.track.hash(&mut h);
        self.thread.hash(&mut h);
        self.at.as_nanos().hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] at={}ns track={}",
            self.check,
            self.class,
            self.at.as_nanos(),
            self.track
        )?;
        if let Some(t) = self.thread {
            write!(f, " thread={t}")?;
        }
        let tag = if self.expected {
            "expected"
        } else {
            "UNEXPECTED"
        };
        write!(f, " ({tag}): {}", self.detail)
    }
}

/// The result of auditing one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Every finding, sorted by sim-time then coordinates, deduplicated by
    /// fingerprint.
    pub findings: Vec<Finding>,
    /// How many timeline events the pass scanned.
    pub events_scanned: usize,
    /// Whether the timeline was complete (recorder enabled, ring never
    /// dropped). Counter equalities and pairing-completeness checks only
    /// run on complete timelines.
    pub complete: bool,
    /// Index (into the scanned event stream) of the first divergent event
    /// for the first finding, as located by the bisector.
    pub divergence: Option<usize>,
}

impl AuditReport {
    /// `true` when the audit produced no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings *not* explained by an injected fault or an abort — the
    /// ones that indicate a real simulator bug.
    #[must_use]
    pub fn unexpected(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.expected).collect()
    }

    /// Number of findings explained by injected chaos faults.
    #[must_use]
    pub fn expected_count(&self) -> usize {
        self.findings.iter().filter(|f| f.expected).count()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} finding(s) over {} event(s){}",
            self.findings.len(),
            self.events_scanned,
            if self.complete {
                ""
            } else {
                " [incomplete timeline]"
            }
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        if let Some(i) = self.divergence {
            writeln!(f, "  first divergent event: #{i}")?;
        }
        Ok(())
    }
}

/// Minimal Fx-style hasher for the auditor's internal maps and sets.
///
/// The checks build membership sets and per-thread indexes keyed by small
/// integers for thousands of hold spans; SipHash (the std default)
/// dominated the audit's runtime. This is the classic rustc `FxHasher`
/// construction: not DoS-resistant, which is fine for process-internal
/// keys, and deliberately *not* used for finding fingerprints — those keep
/// [`DefaultHasher`] so fingerprints stay stable and documented.
mod fxhash {
    use std::hash::{BuildHasherDefault, Hasher};

    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[derive(Debug, Default)]
    pub struct FxHasher {
        hash: u64,
    }

    impl FxHasher {
        #[inline]
        fn add(&mut self, word: u64) {
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
    }

    impl Hasher for FxHasher {
        #[inline]
        fn write(&mut self, bytes: &[u8]) {
            for chunk in bytes.chunks(8) {
                let mut buf = [0_u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                self.add(u64::from_le_bytes(buf));
            }
        }
        #[inline]
        fn write_u32(&mut self, n: u32) {
            self.add(u64::from(n));
        }
        #[inline]
        fn write_u64(&mut self, n: u64) {
            self.add(n);
        }
        #[inline]
        fn write_usize(&mut self, n: usize) {
            self.add(n as u64);
        }
        #[inline]
        fn finish(&self) -> u64 {
            self.hash
        }
    }

    pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
    pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;
}
pub(crate) use fxhash::{FxHashMap, FxHashSet};

/// Interns sparse raw ids (thread ids, monitor tracks) into dense indices
/// so the checks can use flat `Vec` tables instead of hash maps on the
/// multi-thousand-span hot paths. Raw ids are small dense integers in every
/// timeline the simulator records, so the array fast path covers all real
/// runs; the map fallback keeps hand-built or corrupt timelines safe from
/// pathological allocations.
#[derive(Debug, Default)]
pub(crate) struct Interner {
    /// `raw → id + 1` for raw ids below [`DENSE_RAW`]; 0 = unassigned.
    dense: Vec<u32>,
    sparse: FxHashMap<u64, u32>,
    len: u32,
}

const DENSE_RAW: usize = 4096;

impl Interner {
    #[inline]
    fn id(&mut self, raw: u64) -> u32 {
        let i = raw as usize;
        if raw < DENSE_RAW as u64 {
            if self.dense.len() <= i {
                self.dense.resize(i + 1, 0);
            }
            if self.dense[i] == 0 {
                self.len += 1;
                self.dense[i] = self.len;
            }
            self.dense[i] - 1
        } else {
            let len = &mut self.len;
            *self.sparse.entry(raw).or_insert_with(|| {
                *len += 1;
                *len
            }) - 1
        }
    }

    /// Number of distinct ids interned — the size of any dense table
    /// indexed by these ids.
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

/// A closed monitor hold span: `owner` held `track` over `[start, end)`.
/// `m`/`t` are the interned track/owner indices.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hold {
    pub track: u32,
    pub owner: u64,
    pub m: u32,
    pub t: u32,
    pub start: SimTime,
    pub end: SimTime,
}

/// A granted monitor wait span: `thread` waited on monitor `track` from
/// its enqueue at `start` until the grant at `end`. `m`/`t` are the
/// interned track/thread indices.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitSpan {
    pub track: u32,
    pub thread: u64,
    pub m: u32,
    pub t: u32,
    pub start: SimTime,
    pub end: SimTime,
}

/// A `MonitorEnqueue` instant with interned track/thread indices.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Enqueue {
    pub track: u32,
    pub thread: u64,
    pub m: u32,
    pub t: u32,
    pub at: SimTime,
}

/// Shared per-audit context: the event stream bucketed by kind in a single
/// pass, plus the chaos instants and stream-wide facts every check needs.
/// Each bucket preserves stream (= start-time) order, so the checks never
/// rescan the full event stream.
pub(crate) struct AuditCtx {
    /// Interner for thread ids (hold owners, waiters, scheduler tracks).
    pub threads: Interner,
    /// Interner for monitor track indices.
    pub tracks: Interner,
    /// Closed [`MonitorHold`](EventKind::MonitorHold) spans.
    pub holds: Vec<Hold>,
    /// Granted [`MonitorWait`](EventKind::MonitorWait) spans.
    pub waits: Vec<WaitSpan>,
    /// [`MonitorEnqueue`](EventKind::MonitorEnqueue) instants.
    pub enqueues: Vec<Enqueue>,
    /// Per-thread (interned index) starts of `ThreadRunnable`/
    /// `ThreadRunning` spans, each list in time order — the
    /// scheduler-activity evidence the pairing check resolves resumes and
    /// spurious wakeups against.
    pub sched_starts: Vec<Vec<SimTime>>,
    /// `ThreadSafepoint` spans as `(start, duration)` nanosecond pairs.
    pub safepoints: Vec<(u64, u64)>,
    /// Stop-the-world GC work (`GcMinor`/`GcFull`/`GcConcMark`/
    /// `GcConcRemark`) as `(start, duration)` nanosecond pairs.
    pub gc_stw: Vec<(u64, u64)>,
    /// `HeapUsed` samples: `(track, at, bytes)`.
    pub heap_samples: Vec<(u32, SimTime, u64)>,
    /// Span counts per GC kind, for the counter reconciliation.
    pub minor_gcs: u64,
    /// `GcLocalMinor` span count (also the heaplet-mode signal that skips
    /// the heap-sample ordering check).
    pub local_minor_gcs: u64,
    /// `GcFull` span count.
    pub full_gcs: u64,
    /// `GcConcMark` + `GcConcRemark` span count.
    pub conc_phases: u64,
    /// `ChaosDropWakeup` instants: `(at, victim thread)`.
    pub drops: Vec<(SimTime, u64)>,
    /// `ChaosSpuriousWakeup` instants: `(at, woken thread)`.
    pub spurious: Vec<(SimTime, u64)>,
    /// `ChaosGcStall` instants: `(at, extra pause nanoseconds)`.
    pub stalls: Vec<(SimTime, u64)>,
    /// `ChaosRequestDrop` instants: `(at, dropped request id)`.
    pub req_drops: Vec<(SimTime, u64)>,
    /// Whether the run ended abnormally (quarantined or truncated). Waits
    /// legitimately dangle at an abort, so abort runs mark pairing
    /// findings as expected.
    pub aborted: bool,
    /// Recorder enabled and ring never dropped: the stream is the whole
    /// story, so completeness checks (counter equalities, enqueue/wait
    /// matching) are sound.
    pub complete: bool,
    /// Latest end time over all events — "the world continued past `t`"
    /// means `t < last_at`.
    pub last_at: SimTime,
    /// How many timeline events the bucketing pass consumed.
    pub events_scanned: usize,
}

impl AuditCtx {
    pub(crate) fn new<'a>(
        events: impl IntoIterator<Item = &'a TimelineEvent>,
        aborted: bool,
        complete: bool,
    ) -> Self {
        let mut ctx = AuditCtx {
            threads: Interner::default(),
            tracks: Interner::default(),
            holds: Vec::new(),
            waits: Vec::new(),
            enqueues: Vec::new(),
            sched_starts: Vec::new(),
            safepoints: Vec::new(),
            gc_stw: Vec::new(),
            heap_samples: Vec::new(),
            minor_gcs: 0,
            local_minor_gcs: 0,
            full_gcs: 0,
            conc_phases: 0,
            drops: Vec::new(),
            spurious: Vec::new(),
            stalls: Vec::new(),
            req_drops: Vec::new(),
            aborted,
            complete,
            last_at: SimTime::ZERO,
            events_scanned: 0,
        };
        let events = events.into_iter();
        // Monitor holds dominate real timelines (roughly half the stream);
        // the other monitor buckets are an order of magnitude smaller.
        // Reserving up front keeps the bucketing pass realloc-free.
        let hint = events.size_hint().0;
        ctx.holds.reserve(hint / 2 + 1);
        ctx.waits.reserve(hint / 8 + 1);
        ctx.enqueues.reserve(hint / 8 + 1);
        for e in events {
            ctx.events_scanned += 1;
            match e.kind {
                EventKind::MonitorHold => {
                    let (m, t) = (ctx.tracks.id(u64::from(e.track)), ctx.threads.id(e.arg));
                    ctx.holds.push(Hold {
                        track: e.track,
                        owner: e.arg,
                        m,
                        t,
                        start: e.at,
                        end: e.end(),
                    });
                }
                EventKind::MonitorWait => {
                    let (m, t) = (ctx.tracks.id(u64::from(e.track)), ctx.threads.id(e.arg));
                    ctx.waits.push(WaitSpan {
                        track: e.track,
                        thread: e.arg,
                        m,
                        t,
                        start: e.at,
                        end: e.end(),
                    });
                }
                EventKind::MonitorEnqueue => {
                    let (m, t) = (ctx.tracks.id(u64::from(e.track)), ctx.threads.id(e.arg));
                    ctx.enqueues.push(Enqueue {
                        track: e.track,
                        thread: e.arg,
                        m,
                        t,
                        at: e.at,
                    });
                }
                EventKind::ThreadRunnable | EventKind::ThreadRunning => {
                    let t = ctx.threads.id(u64::from(e.track)) as usize;
                    if ctx.sched_starts.len() <= t {
                        ctx.sched_starts.resize_with(t + 1, Vec::new);
                    }
                    ctx.sched_starts[t].push(e.at);
                }
                EventKind::ThreadSafepoint => {
                    ctx.safepoints.push((e.at.as_nanos(), e.dur.as_nanos()));
                }
                EventKind::GcMinor => {
                    ctx.minor_gcs += 1;
                    ctx.gc_stw.push((e.at.as_nanos(), e.dur.as_nanos()));
                }
                EventKind::GcFull => {
                    ctx.full_gcs += 1;
                    ctx.gc_stw.push((e.at.as_nanos(), e.dur.as_nanos()));
                }
                EventKind::GcConcMark | EventKind::GcConcRemark => {
                    ctx.conc_phases += 1;
                    ctx.gc_stw.push((e.at.as_nanos(), e.dur.as_nanos()));
                }
                EventKind::GcLocalMinor => ctx.local_minor_gcs += 1,
                EventKind::HeapUsed => ctx.heap_samples.push((e.track, e.at, e.arg)),
                EventKind::ChaosDropWakeup => ctx.drops.push((e.at, e.arg)),
                EventKind::ChaosSpuriousWakeup => ctx.spurious.push((e.at, e.arg)),
                EventKind::ChaosGcStall => ctx.stalls.push((e.at, e.arg)),
                EventKind::ChaosRequestDrop => ctx.req_drops.push((e.at, e.arg)),
                _ => {}
            }
            if e.end() > ctx.last_at {
                ctx.last_at = e.end();
            }
        }
        // The sched table must cover every interned thread id, including
        // threads that only ever appear as hold owners or waiters.
        ctx.sched_starts.resize_with(ctx.threads.len(), Vec::new);
        ctx
    }
}

/// The structural (counter-free) portion of the audit, shared between the
/// full pass and the bisector's prefix replays.
pub(crate) fn structural_findings(ctx: &AuditCtx) -> Vec<Finding> {
    let mut findings = lockgraph::check(ctx);
    findings.extend(pairing::check(ctx));
    findings.extend(consistency::check(ctx));
    findings
}

/// Audits one run: scans the merged timeline, runs all three checks, and
/// bisects the first finding to its first divergent event.
///
/// `aborted` should be `true` when the run did not complete normally
/// (quarantined or truncated): waits that dangle at an abort are then
/// expected findings rather than lost-wakeup false positives.
#[must_use]
pub fn audit(timeline: &Timeline, counters: &Counters, aborted: bool) -> AuditReport {
    let complete = timeline.is_enabled() && timeline.dropped() == 0;
    let ctx = AuditCtx::new(timeline.events(), aborted, complete);
    let mut findings = structural_findings(&ctx);
    if complete {
        findings.extend(consistency::counter_checks(&ctx, counters));
    }
    findings.sort_by(|a, b| {
        (a.at, a.check, a.class, a.track, a.thread)
            .cmp(&(b.at, b.check, b.class, b.track, b.thread))
    });
    let mut seen = HashSet::new();
    findings.retain(|f| seen.insert(f.fingerprint()));
    // The event stream is only materialized when a finding needs the
    // bisector's prefix replays — the (common) clean path stays a single
    // streaming pass.
    let divergence = findings.first().and_then(|f| {
        let events: Vec<TimelineEvent> = timeline.events().copied().collect();
        bisect::divergence(&events, f, aborted, complete)
    });
    AuditReport {
        findings,
        events_scanned: ctx.events_scanned,
        complete,
        divergence,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use scalesim_simkit::{SimDuration, SimTime};
    use scalesim_trace::{EventKind, TimelineEvent};

    pub fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    pub fn span(kind: EventKind, track: u32, start: u64, end: u64, arg: u64) -> TimelineEvent {
        TimelineEvent {
            kind,
            track,
            at: t(start),
            dur: SimDuration::from_nanos(end - start),
            arg,
        }
    }

    pub fn instant(kind: EventKind, track: u32, at: u64, arg: u64) -> TimelineEvent {
        TimelineEvent {
            kind,
            track,
            at: t(at),
            dur: SimDuration::ZERO,
            arg,
        }
    }

    /// Sorts hand-built events the way `Timeline::merge` would (by start
    /// time; the tests don't rely on rank tie-breaks).
    pub fn sorted(mut events: Vec<TimelineEvent>) -> Vec<TimelineEvent> {
        events.sort_by_key(|e| e.at.as_nanos());
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_trace::CounterId;

    #[test]
    fn fingerprints_are_deterministic_and_distinguish_classes() {
        let f1 = Finding {
            check: Check::WaitPairing,
            class: "lost-wakeup",
            detail: "a".into(),
            at: SimTime::from_nanos(100),
            track: 3,
            thread: Some(7),
            expected: true,
        };
        let f2 = Finding {
            class: "dangling-wait",
            ..f1.clone()
        };
        assert_eq!(f1.fingerprint(), f1.clone().fingerprint());
        assert_ne!(f1.fingerprint(), f2.fingerprint());
        // Detail text does not affect the fingerprint.
        let f3 = Finding {
            detail: "b".into(),
            ..f1.clone()
        };
        assert_eq!(f1.fingerprint(), f3.fingerprint());
    }

    #[test]
    fn empty_timeline_audits_clean() {
        let tl = Timeline::with_capacity(8);
        let report = audit(&tl, &Counters::new(), false);
        assert!(report.is_clean(), "{report}");
        assert!(report.complete);
        assert_eq!(report.events_scanned, 0);
        assert_eq!(report.divergence, None);
    }

    #[test]
    fn disabled_timeline_is_incomplete_and_clean() {
        let tl = Timeline::disabled();
        let mut counters = Counters::new();
        counters.inc(CounterId::LockContentions); // would mismatch if checked
        let report = audit(&tl, &counters, false);
        assert!(report.is_clean(), "{report}");
        assert!(!report.complete);
    }

    #[test]
    fn display_lists_findings() {
        let report = AuditReport {
            findings: vec![Finding {
                check: Check::LockOrder,
                class: "lock-cycle",
                detail: "monitor0 -> monitor1 -> monitor0".into(),
                at: SimTime::from_nanos(5),
                track: 0,
                thread: Some(2),
                expected: false,
            }],
            events_scanned: 10,
            complete: true,
            divergence: Some(4),
        };
        let text = report.to_string();
        assert!(text.contains("lock-order/lock-cycle"), "{text}");
        assert!(text.contains("UNEXPECTED"), "{text}");
        assert!(text.contains("divergent event: #4"), "{text}");
        assert_eq!(report.unexpected().len(), 1);
        assert_eq!(report.expected_count(), 0);
    }
}
