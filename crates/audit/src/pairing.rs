//! Check 2: wait/notify pairing.
//!
//! The lock table emits a [`MonitorEnqueue`] instant when a thread joins a
//! monitor's wait queue and closes it with a [`MonitorWait`] span when the
//! handoff grants the monitor. This check audits the protocol around those
//! records:
//!
//! * every wait span must have a matching enqueue (and, on complete
//!   timelines, vice versa — an enqueue that is never closed is a
//!   **dangling wait**);
//! * every *granted* waiter must actually resume — a closed wait whose
//!   thread shows no later activity while the rest of the world moves on
//!   is a **lost wakeup** (the victim was granted the monitor but never
//!   scheduled again);
//! * a thread that runs *inside* its own wait window — or whose chaos
//!   instant says it was woken without the lock — is a **spurious
//!   wakeup**.
//!
//! Findings are cross-validated against the chaos instants recorded in the
//! same timeline: an injected dropped or spurious wakeup is an *expected*
//! finding. Runs that aborted also mark pairing findings expected, since
//! waits legitimately dangle at the point of a quarantine.
//!
//! [`MonitorEnqueue`]: scalesim_trace::EventKind::MonitorEnqueue
//! [`MonitorWait`]: scalesim_trace::EventKind::MonitorWait

use scalesim_simkit::SimTime;

use crate::{AuditCtx, Check, Enqueue, Finding, FxHashSet};

pub(crate) fn check(ctx: &AuditCtx) -> Vec<Finding> {
    let waits = &ctx.waits;
    let enqueues = &ctx.enqueues;
    let n_threads = ctx.threads.len();
    // Per-thread (interned index) resume evidence: the *latest*
    // scheduler-span start, hold start and enqueue per thread (the buckets
    // are in stream = time order, so the last write wins).
    let mut hold_last: Vec<Option<SimTime>> = vec![None; n_threads];
    for h in &ctx.holds {
        hold_last[h.t as usize] = Some(h.start);
    }
    let mut enqueue_last: Vec<Option<SimTime>> = vec![None; n_threads];
    for e in enqueues {
        enqueue_last[e.t as usize] = Some(e.at);
    }
    let sched_last = |t: u32| -> Option<SimTime> { ctx.sched_starts[t as usize].last().copied() };

    let chaos_names = |tid: u64| {
        ctx.drops.iter().any(|&(_, v)| v == tid) || ctx.spurious.iter().any(|&(_, v)| v == tid)
    };
    let mut findings = Vec::new();

    // -- Enqueue/wait matching -------------------------------------------
    // A wait span's start *is* its enqueue time (the table computes it from
    // the grant's waited duration), so the pair key is exact. A grant with
    // *zero* wait leaves no wait span (the ring suppresses zero-length
    // spans); its evidence is the grantee's own hold starting exactly at
    // the enqueue time.
    let mut wait_keys: FxHashSet<(u32, u32, u64)> =
        FxHashSet::with_capacity_and_hasher(waits.len(), Default::default());
    wait_keys.extend(waits.iter().map(|w| (w.m, w.t, w.start.as_nanos())));
    let mut enqueue_keys: FxHashSet<(u32, u32, u64)> =
        FxHashSet::with_capacity_and_hasher(enqueues.len(), Default::default());
    enqueue_keys.extend(enqueues.iter().map(|e| (e.m, e.t, e.at.as_nanos())));
    // Grant evidence is only ever probed at enqueue instants, and the hold
    // bucket is already in start-time order, so a binary search plus a scan
    // of the (tiny) same-instant run beats materializing a hold-start set.
    let grant_hold = |m: u32, t: u32, at: SimTime| -> bool {
        let lo = ctx.holds.partition_point(|h| h.start < at);
        ctx.holds[lo..]
            .iter()
            .take_while(|h| h.start == at)
            .any(|h| h.m == m && h.t == t)
    };
    let closed = |m: u32, t: u32, at: SimTime| -> bool {
        wait_keys.contains(&(m, t, at.as_nanos())) || grant_hold(m, t, at)
    };
    if ctx.complete {
        for w in waits {
            if !enqueue_keys.contains(&(w.m, w.t, w.start.as_nanos())) {
                findings.push(Finding {
                    check: Check::WaitPairing,
                    class: "wait-without-enqueue",
                    detail: format!(
                        "monitor{} wait span for thread {} at {}ns has no matching enqueue instant",
                        w.track,
                        w.thread,
                        w.start.as_nanos()
                    ),
                    at: w.start,
                    track: w.track,
                    thread: Some(w.thread),
                    expected: false,
                });
            }
        }
    }
    for e in enqueues {
        if !closed(e.m, e.t, e.at) {
            findings.push(Finding {
                check: Check::WaitPairing,
                class: "dangling-wait",
                detail: format!(
                    "thread {} enqueued on monitor{} at {}ns and was never granted",
                    e.thread,
                    e.track,
                    e.at.as_nanos()
                ),
                at: e.at,
                track: e.track,
                thread: Some(e.thread),
                expected: ctx.aborted || chaos_names(e.thread),
            });
        }
    }

    // -- Lost wakeups -----------------------------------------------------
    // A closed wait means the table granted the monitor; the thread must
    // then show *some* later life: a runnable/running span, the granted
    // hold itself (which starts exactly at the grant), or a later enqueue.
    // No evidence while the world kept moving = the wakeup was lost.
    for w in waits {
        let resumed = sched_last(w.t).is_some_and(|t| t >= w.end)
            || hold_last[w.t as usize].is_some_and(|t| t >= w.end)
            || enqueue_last[w.t as usize].is_some_and(|t| t > w.end);
        if !resumed && ctx.last_at > w.end {
            let injected = ctx
                .drops
                .iter()
                .any(|&(at, v)| v == w.thread && at == w.end);
            findings.push(Finding {
                check: Check::WaitPairing,
                class: "lost-wakeup",
                detail: format!(
                    "thread {} was granted monitor{} at {}ns but never resumed \
                     (world continued to {}ns){}",
                    w.thread,
                    w.track,
                    w.end.as_nanos(),
                    ctx.last_at.as_nanos(),
                    if injected {
                        " — matches an injected dropped wakeup"
                    } else {
                        ""
                    }
                ),
                at: w.end,
                track: w.track,
                thread: Some(w.thread),
                expected: injected || ctx.aborted || chaos_names(w.thread),
            });
        }
    }

    // -- Spurious wakeups -------------------------------------------------
    // (a) Each injected spurious-wakeup instant must correspond to a wait
    // that was open at that moment (otherwise the injection record itself
    // is inconsistent).
    let mut covered: FxHashSet<(u32, u64)> = FxHashSet::default();
    for &(at, tid) in &ctx.spurious {
        let open_wait = enqueues
            .iter()
            .find(|e| {
                e.thread == tid
                    && e.at <= at
                    && !grant_hold(e.m, e.t, e.at)
                    && !waits
                        .iter()
                        .any(|w| w.m == e.m && w.t == e.t && w.start == e.at && w.end <= at)
            })
            .copied();
        match open_wait {
            Some(Enqueue { track, .. }) => {
                covered.insert((track, tid));
                findings.push(Finding {
                    check: Check::WaitPairing,
                    class: "spurious-wakeup",
                    detail: format!(
                        "thread {tid} was woken on monitor{track} at {}ns without the lock \
                         (injected spurious wakeup)",
                        at.as_nanos()
                    ),
                    at,
                    track,
                    thread: Some(tid),
                    expected: true,
                });
            }
            None if ctx.complete => findings.push(Finding {
                check: Check::WaitPairing,
                class: "spurious-no-wait",
                detail: format!(
                    "spurious-wakeup instant for thread {tid} at {}ns but no wait was open",
                    at.as_nanos()
                ),
                at,
                track: 0,
                thread: Some(tid),
                expected: false,
            }),
            None => {}
        }
    }
    // (b) Span evidence: the thread ran strictly inside its own wait
    // window (closed waits), or at/after the enqueue of a wait that never
    // closed. Skip pairs already covered by an instant above. The
    // per-thread start lists are in time order, so the first candidate is
    // a binary search, not a scan (threads with many waits made the scan
    // quadratic).
    for w in waits {
        if covered.contains(&(w.track, w.thread)) {
            continue;
        }
        let starts = &ctx.sched_starts[w.t as usize];
        let i = starts.partition_point(|&t| t <= w.start);
        if let Some(&at) = starts.get(i).filter(|&&t| t < w.end) {
            findings.push(spurious_span_finding(
                ctx,
                w.track,
                w.thread,
                at,
                &chaos_names,
            ));
        }
    }
    for e in enqueues {
        if covered.contains(&(e.track, e.thread)) || closed(e.m, e.t, e.at) {
            continue;
        }
        let starts = &ctx.sched_starts[e.t as usize];
        let i = starts.partition_point(|&t| t < e.at);
        if let Some(&at) = starts.get(i) {
            findings.push(spurious_span_finding(
                ctx,
                e.track,
                e.thread,
                at,
                &chaos_names,
            ));
        }
    }

    findings
}

fn spurious_span_finding(
    ctx: &AuditCtx,
    track: u32,
    tid: u64,
    at: SimTime,
    chaos_names: &dyn Fn(u64) -> bool,
) -> Finding {
    Finding {
        check: Check::WaitPairing,
        class: "spurious-wakeup",
        detail: format!(
            "thread {tid} became runnable at {}ns while queued on monitor{track}",
            at.as_nanos()
        ),
        at,
        track,
        thread: Some(tid),
        expected: ctx.aborted || chaos_names(tid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{instant, sorted, span};
    use scalesim_trace::EventKind::{
        ChaosDropWakeup, ChaosSpuriousWakeup, MonitorEnqueue, MonitorHold, MonitorWait,
        ThreadRunnable, ThreadRunning,
    };
    use scalesim_trace::TimelineEvent;

    fn run(events: Vec<TimelineEvent>, aborted: bool) -> Vec<Finding> {
        let events = sorted(events);
        check(&AuditCtx::new(&events, aborted, true))
    }

    /// A clean contended handoff: enqueue, wait closed by grant, waiter
    /// holds then runs on.
    fn clean_handoff() -> Vec<TimelineEvent> {
        vec![
            span(ThreadRunning, 1, 0, 10, 0),
            instant(MonitorEnqueue, 0, 10, 1),
            span(MonitorHold, 0, 0, 30, 0),
            span(MonitorWait, 0, 10, 30, 1),
            span(MonitorHold, 0, 30, 45, 1),
            span(ThreadRunning, 1, 45, 90, 0),
            span(ThreadRunning, 0, 50, 100, 0),
        ]
    }

    #[test]
    fn clean_handoff_audits_clean() {
        let findings = run(clean_handoff(), false);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn granted_waiter_that_vanishes_is_a_lost_wakeup() {
        // Same handoff, but thread 1 never appears after its grant at 30
        // while thread 0 keeps running to 100.
        let findings = run(
            vec![
                span(ThreadRunning, 1, 0, 10, 0),
                instant(MonitorEnqueue, 0, 10, 1),
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorWait, 0, 10, 30, 1),
                span(ThreadRunning, 0, 50, 100, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.class, "lost-wakeup");
        assert_eq!(f.thread, Some(1));
        assert_eq!(f.track, 0);
        assert_eq!(f.at.as_nanos(), 30);
        assert!(!f.expected, "no chaos instant: a real bug");
    }

    #[test]
    fn injected_drop_marks_the_lost_wakeup_expected() {
        let findings = run(
            vec![
                span(ThreadRunning, 1, 0, 10, 0),
                instant(MonitorEnqueue, 0, 10, 1),
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorWait, 0, 10, 30, 1),
                instant(ChaosDropWakeup, 0, 30, 1),
                span(ThreadRunning, 0, 50, 100, 0),
            ],
            false,
        );
        let lost: Vec<_> = findings
            .iter()
            .filter(|f| f.class == "lost-wakeup")
            .collect();
        assert_eq!(lost.len(), 1, "{findings:?}");
        assert!(lost[0].expected);
        assert!(lost[0].detail.contains("injected"), "{}", lost[0].detail);
        assert!(findings.iter().all(|f| f.expected), "{findings:?}");
    }

    #[test]
    fn zero_wait_grant_closes_the_enqueue() {
        // Thread 1 enqueues at 30 and is granted at the same instant (the
        // owner released at exactly 30): the zero-length wait span is
        // suppressed by the ring, so the grantee's own hold starting at 30
        // is the grant evidence. Not dangling, not spurious.
        let findings = run(
            vec![
                span(ThreadRunning, 1, 0, 30, 0),
                instant(MonitorEnqueue, 0, 30, 1),
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorHold, 0, 30, 45, 1),
                span(ThreadRunning, 1, 45, 90, 0),
                span(ThreadRunning, 0, 50, 100, 0),
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unclosed_enqueue_is_a_dangling_wait() {
        let findings = run(
            vec![
                instant(MonitorEnqueue, 2, 10, 3),
                span(MonitorHold, 2, 0, 30, 0),
                span(ThreadRunning, 0, 30, 100, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "dangling-wait");
        assert_eq!(findings[0].thread, Some(3));
        assert!(!findings[0].expected);
        // The same timeline from an aborted run is expected.
        let findings = run(
            vec![
                instant(MonitorEnqueue, 2, 10, 3),
                span(MonitorHold, 2, 0, 30, 0),
                span(ThreadRunning, 0, 30, 100, 0),
            ],
            true,
        );
        assert!(findings.iter().all(|f| f.expected), "{findings:?}");
    }

    #[test]
    fn wait_without_enqueue_flagged_on_complete_timelines() {
        let findings = run(
            vec![
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorWait, 0, 10, 30, 1),
                span(MonitorHold, 0, 30, 40, 1),
                span(ThreadRunning, 1, 40, 50, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "wait-without-enqueue");
        // Incomplete timeline: the enqueue may simply have been evicted.
        let events = sorted(vec![
            span(MonitorHold, 0, 0, 30, 0),
            span(MonitorWait, 0, 10, 30, 1),
            span(MonitorHold, 0, 30, 40, 1),
            span(ThreadRunning, 1, 40, 50, 0),
        ]);
        let findings = check(&AuditCtx::new(&events, false, false));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn spurious_instant_over_open_wait_is_expected() {
        let findings = run(
            vec![
                instant(MonitorEnqueue, 1, 10, 2),
                instant(ChaosSpuriousWakeup, 0, 10, 2),
                span(MonitorHold, 1, 0, 30, 0),
                span(ThreadRunning, 0, 30, 60, 0),
            ],
            true,
        );
        let spurious: Vec<_> = findings
            .iter()
            .filter(|f| f.class == "spurious-wakeup")
            .collect();
        assert_eq!(spurious.len(), 1, "{findings:?}");
        assert_eq!(spurious[0].track, 1);
        assert_eq!(spurious[0].thread, Some(2));
        assert!(spurious[0].expected);
        assert!(findings.iter().all(|f| f.expected), "{findings:?}");
    }

    #[test]
    fn running_inside_own_wait_window_is_spurious() {
        let findings = run(
            vec![
                instant(MonitorEnqueue, 0, 10, 1),
                span(ThreadRunnable, 1, 15, 20, 0), // inside the wait window!
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorWait, 0, 10, 30, 1),
                span(MonitorHold, 0, 30, 40, 1),
                span(ThreadRunning, 1, 40, 50, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "spurious-wakeup");
        assert_eq!(findings[0].at.as_nanos(), 15);
        assert!(!findings[0].expected, "no instant recorded: a real bug");
    }

    #[test]
    fn spurious_instant_without_open_wait_is_inconsistent() {
        let findings = run(
            vec![
                instant(ChaosSpuriousWakeup, 0, 10, 5),
                span(ThreadRunning, 0, 0, 60, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "spurious-no-wait");
        assert!(!findings[0].expected);
    }

    #[test]
    fn truncated_run_open_wait_is_not_spurious_or_lost() {
        // Thread 2 is still queued when the run is cut off: dangling
        // (expected, aborted) but neither lost nor spurious.
        let findings = run(
            vec![
                instant(MonitorEnqueue, 0, 40, 2),
                span(MonitorHold, 0, 0, 30, 0),
                span(ThreadRunning, 0, 30, 50, 0),
            ],
            true,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "dangling-wait");
        assert!(findings[0].expected);
    }
}
