//! The divergence bisector: delta-debugs a finding to the first divergent
//! event.
//!
//! Given the merged event stream and a target finding, binary-search the
//! shortest stream prefix on which the structural checks still reproduce a
//! finding with the same coordinates (check, class, track, thread). The
//! last event of that minimal prefix — index `L - 1` — is the *first
//! divergent event*: the earliest record whose inclusion makes the
//! timeline inconsistent. Repro artifacts name it so a fix can be verified
//! against the exact same spot.
//!
//! Counter checks are excluded from prefix replays (a prefix never agrees
//! with whole-run counters), which is also why a finding that only the
//! counter comparison produced cannot be bisected and yields `None`.

use scalesim_trace::TimelineEvent;

use crate::{structural_findings, AuditCtx, Finding};

/// Index of the first divergent event for `target`, or `None` when the
/// finding does not reproduce on any prefix (e.g. counter-only findings).
///
/// `aborted` and `complete` must be the flags of the original audit so the
/// prefix replays classify findings the same way.
#[must_use]
pub fn divergence(
    events: &[TimelineEvent],
    target: &Finding,
    aborted: bool,
    complete: bool,
) -> Option<usize> {
    let reproduces = |len: usize| {
        let ctx = AuditCtx::new(&events[..len], aborted, complete);
        structural_findings(&ctx).iter().any(|f| {
            f.check == target.check
                && f.class == target.class
                && f.track == target.track
                && f.thread == target.thread
        })
    };
    if events.is_empty() || !reproduces(events.len()) {
        return None;
    }
    // Invariant: reproduces(hi); binary search the smallest such length.
    let (mut lo, mut hi) = (1_usize, events.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reproduces(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{instant, sorted, span};
    use crate::Check;
    use scalesim_simkit::SimTime;
    use scalesim_trace::EventKind::{MonitorEnqueue, MonitorHold, MonitorWait, ThreadRunning};

    #[test]
    fn bisects_a_lost_wakeup_to_the_event_that_proves_it() {
        // Thread 1 is granted monitor0 at t=30 and never resumes; the
        // world moving past 30 is what turns the silence into a finding.
        let events = sorted(vec![
            span(ThreadRunning, 1, 0, 10, 0),
            instant(MonitorEnqueue, 0, 10, 1),
            span(MonitorHold, 0, 0, 30, 0),
            span(MonitorWait, 0, 10, 30, 1),
            span(ThreadRunning, 0, 50, 100, 0),
        ]);
        let ctx = AuditCtx::new(&events, false, true);
        let findings = structural_findings(&ctx);
        let target = findings
            .iter()
            .find(|f| f.class == "lost-wakeup")
            .expect("lost wakeup detected");
        let idx = divergence(&events, target, false, true).expect("bisectable");
        // The minimal prefix must include the post-grant activity of some
        // other thread — the last event in the stream.
        assert_eq!(idx, events.len() - 1);
        assert_eq!(events[idx].kind, ThreadRunning);
    }

    #[test]
    fn bisects_a_mutex_violation_to_the_overlapping_hold() {
        let events = sorted(vec![
            span(MonitorHold, 0, 0, 30, 0),
            span(MonitorHold, 0, 20, 45, 1),
            span(ThreadRunning, 0, 50, 100, 0),
            span(ThreadRunning, 1, 50, 100, 0),
        ]);
        let ctx = AuditCtx::new(&events, false, true);
        let findings = structural_findings(&ctx);
        let target = findings
            .iter()
            .find(|f| f.class == "hold-overlap")
            .expect("overlap detected");
        let idx = divergence(&events, target, false, true).expect("bisectable");
        assert_eq!(events[idx].kind, MonitorHold);
        assert_eq!(events[idx].arg, 1, "the second, overlapping hold");
    }

    #[test]
    fn clean_streams_and_foreign_targets_yield_none() {
        let events = sorted(vec![span(MonitorHold, 0, 0, 30, 0)]);
        let target = Finding {
            check: Check::HappensBefore,
            class: "hold-overlap",
            detail: String::new(),
            at: SimTime::ZERO,
            track: 9,
            thread: Some(9),
            expected: false,
        };
        assert_eq!(divergence(&events, &target, false, true), None);
        assert_eq!(divergence(&[], &target, false, true), None);
    }
}
