//! Check 1: the lock-order graph.
//!
//! An edge `A → B` is recorded whenever some thread acquired monitor `B`
//! while still holding monitor `A` (its hold span of `B` starts inside its
//! hold span of `A`). A cycle in that graph is a potential deadlock: two
//! schedules of the same program could acquire the cycle's monitors in
//! opposite orders and block forever. The simulator's synthetic workloads
//! never nest monitors, so any edge at all on a clean run is interesting
//! and any cycle is a finding.

use std::collections::BTreeMap;

use scalesim_simkit::SimTime;

use crate::{AuditCtx, Check, Finding};

/// A nesting edge `from → to` with its first evidence.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: u32,
    /// Thread that performed the nested acquisition.
    owner: u64,
    /// Sim-time of the nested (inner) acquisition.
    at: SimTime,
}

pub(crate) fn check(ctx: &AuditCtx) -> Vec<Finding> {
    // Per-thread stack sweep in one pass over the (start-ordered) hold
    // bucket: when a hold starts while earlier holds by the same thread are
    // still open, the innermost open hold contributes a nesting edge.
    // Innermost-only edges suffice for cycle detection: a nest chain
    // A ⊃ B ⊃ C yields A→B and B→C, and cycles are closed transitively by
    // the DFS below. Stream order also means each edge's recorded evidence
    // is its earliest nested acquisition.
    let mut stacks: Vec<Vec<(SimTime, u32)>> = vec![Vec::new(); ctx.threads.len()]; // (end, track)
    let mut edges: BTreeMap<u32, Vec<Edge>> = BTreeMap::new();
    for h in &ctx.holds {
        let stack = &mut stacks[h.t as usize];
        while stack.last().is_some_and(|&(top_end, _)| top_end <= h.start) {
            stack.pop();
        }
        if let Some(&(_, outer)) = stack.last() {
            if outer != h.track {
                let list = edges.entry(outer).or_default();
                if !list.iter().any(|e| e.to == h.track) {
                    list.push(Edge {
                        to: h.track,
                        owner: h.owner,
                        at: h.start,
                    });
                }
            }
        }
        stack.push((h.end, h.track));
    }

    find_cycles(&edges)
}

/// Iterative colored DFS over the edge map; every back edge closes a cycle.
/// Cycles are reported once each, normalized by rotating the node list so
/// the smallest monitor index leads.
fn find_cycles(edges: &BTreeMap<u32, Vec<Edge>>) -> Vec<Finding> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<u32, Color> = edges.keys().map(|&n| (n, Color::White)).collect();
    for es in edges.values() {
        for e in es {
            color.entry(e.to).or_insert(Color::White);
        }
    }
    let nodes: Vec<u32> = color.keys().copied().collect();

    let mut findings = Vec::new();
    let mut reported: Vec<Vec<u32>> = Vec::new();
    for &root in &nodes {
        if color[&root] != Color::White {
            continue;
        }
        // Stack of (node, next edge index); `path` mirrors the gray chain.
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        let mut path: Vec<u32> = vec![root];
        color.insert(root, Color::Gray);
        while !stack.is_empty() {
            let (node, step) = {
                let (node, next) = stack.last_mut().expect("non-empty stack");
                let node = *node;
                let out = edges.get(&node).map_or(&[][..], Vec::as_slice);
                if *next < out.len() {
                    *next += 1;
                    (node, Some(out[*next - 1]))
                } else {
                    (node, None)
                }
            };
            if let Some(edge) = step {
                match color[&edge.to] {
                    Color::White => {
                        color.insert(edge.to, Color::Gray);
                        stack.push((edge.to, 0));
                        path.push(edge.to);
                    }
                    Color::Gray => {
                        // Back edge: the cycle is the path suffix from
                        // `edge.to` plus the edge back to it.
                        let pos = path.iter().position(|&n| n == edge.to).unwrap_or(0);
                        let mut cycle: Vec<u32> = path[pos..].to_vec();
                        let rot = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, n)| n)
                            .map_or(0, |(i, _)| i);
                        cycle.rotate_left(rot);
                        if !reported.contains(&cycle) {
                            findings.push(cycle_finding(&cycle, edges, edge));
                            reported.push(cycle);
                        }
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    findings
}

fn cycle_finding(cycle: &[u32], edges: &BTreeMap<u32, Vec<Edge>>, back: Edge) -> Finding {
    // Earliest evidence across the cycle's edges anchors the finding.
    let mut earliest = back;
    for (i, &from) in cycle.iter().enumerate() {
        let to = cycle[(i + 1) % cycle.len()];
        if let Some(e) = edges
            .get(&from)
            .and_then(|es| es.iter().find(|e| e.to == to))
        {
            if e.at < earliest.at {
                earliest = *e;
            }
        }
    }
    let chain: Vec<String> = cycle
        .iter()
        .chain(cycle.first())
        .map(|m| format!("monitor{m}"))
        .collect();
    Finding {
        check: Check::LockOrder,
        class: "lock-cycle",
        detail: format!(
            "lock-order cycle {} (first nested acquire by thread {} at {}ns)",
            chain.join(" -> "),
            earliest.owner,
            earliest.at.as_nanos()
        ),
        at: earliest.at,
        track: cycle.iter().copied().min().unwrap_or(back.to),
        thread: Some(earliest.owner),
        expected: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sorted, span};
    use scalesim_trace::EventKind::MonitorHold;

    fn run(events: Vec<scalesim_trace::TimelineEvent>) -> Vec<Finding> {
        let events = sorted(events);
        check(&AuditCtx::new(&events, false, true))
    }

    #[test]
    fn disjoint_holds_have_no_edges_or_cycles() {
        let findings = run(vec![
            span(MonitorHold, 0, 0, 10, 1),
            span(MonitorHold, 1, 10, 20, 1),
            span(MonitorHold, 0, 20, 30, 2),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn consistent_nesting_is_clean() {
        // Both threads take monitor0 then monitor1: edges 0→1 only.
        let findings = run(vec![
            span(MonitorHold, 0, 0, 30, 1),
            span(MonitorHold, 1, 5, 25, 1),
            span(MonitorHold, 0, 40, 70, 2),
            span(MonitorHold, 1, 45, 65, 2),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn opposite_nesting_orders_form_a_cycle() {
        // Thread 1: 0 ⊃ 1. Thread 2: 1 ⊃ 0. Classic AB/BA deadlock shape.
        let findings = run(vec![
            span(MonitorHold, 0, 0, 30, 1),
            span(MonitorHold, 1, 5, 25, 1),
            span(MonitorHold, 1, 40, 70, 2),
            span(MonitorHold, 0, 45, 65, 2),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.check, Check::LockOrder);
        assert_eq!(f.class, "lock-cycle");
        assert!(!f.expected);
        assert_eq!(f.track, 0, "cycle normalized to smallest monitor");
        assert_eq!(f.at.as_nanos(), 5, "earliest nested acquire");
        assert_eq!(f.thread, Some(1));
        assert!(
            f.detail.contains("monitor0 -> monitor1 -> monitor0"),
            "{}",
            f.detail
        );
    }

    #[test]
    fn hand_over_hand_chaining_still_yields_edges() {
        // Thread 1 chains 0→1→2 hand-over-hand (overlap, not containment);
        // thread 2 chains 2→0. Cycle through the three monitors.
        let findings = run(vec![
            span(MonitorHold, 0, 0, 10, 1),
            span(MonitorHold, 1, 5, 20, 1),
            span(MonitorHold, 2, 15, 30, 1),
            span(MonitorHold, 2, 40, 60, 2),
            span(MonitorHold, 0, 50, 70, 2),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].detail.contains("monitor0"),
            "{}",
            findings[0].detail
        );
    }

    #[test]
    fn three_cycle_is_detected_once() {
        let findings = run(vec![
            span(MonitorHold, 0, 0, 20, 1),
            span(MonitorHold, 1, 5, 15, 1),
            span(MonitorHold, 1, 30, 50, 2),
            span(MonitorHold, 2, 35, 45, 2),
            span(MonitorHold, 2, 60, 80, 3),
            span(MonitorHold, 0, 65, 75, 3),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .detail
                .contains("monitor0 -> monitor1 -> monitor2 -> monitor0"),
            "{}",
            findings[0].detail
        );
    }

    #[test]
    fn reentrant_same_monitor_is_not_an_edge() {
        // Same track nested (can't happen live — monitors panic on
        // re-entry — but the auditor must not crash or report a self-loop).
        let findings = run(vec![
            span(MonitorHold, 0, 0, 30, 1),
            span(MonitorHold, 0, 5, 25, 1),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
