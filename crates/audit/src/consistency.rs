//! Check 3: happens-before consistency.
//!
//! Replays the recorded schedule's ordering constraints and verifies the
//! rest of the record against them:
//!
//! * **Mutual exclusion / handoff order** — hold spans on one monitor must
//!   not overlap, and (on complete timelines) every granted wait must be
//!   preceded by a release ending at exactly the grant time. The replay
//!   carries per-thread logical clocks joined across monitor handoff
//!   edges, so a grant that is not ordered after the matching release is
//!   caught even when the wall-clock times happen to look plausible. The
//!   clocks use the FastTrack-style *epoch* optimization of vector-clock
//!   replay: handoffs on one monitor are totally ordered, so a release
//!   publishes a single scalar epoch and the acquirer's join is a scalar
//!   max rather than a per-hold vector clone.
//! * **Safepoint reconciliation** — every stop-the-world pause (the
//!   [`ThreadSafepoint`] spans emitted per live thread) must be explained
//!   by the GC work recorded at the same instant plus any injected
//!   [`ChaosGcStall`] extra. A pause inflated by exactly the injected
//!   amount is an *expected* `gc-stall` finding; any other deficit is an
//!   unexpected `safepoint-mismatch`.
//! * **Counter consistency** — on complete timelines the counters registry
//!   must agree with the event stream (contentions = enqueues, GC counters
//!   = GC spans, chaos injections = chaos instants, …).
//! * **Heap-epoch samples** — [`HeapUsed`] pre/post collection pairs must
//!   be ordered and non-increasing across each collection. (Skipped in
//!   heaplet mode, where concurrent local collections interleave their
//!   samples by design.)
//!
//! [`ThreadSafepoint`]: scalesim_trace::EventKind::ThreadSafepoint
//! [`ChaosGcStall`]: scalesim_trace::EventKind::ChaosGcStall
//! [`HeapUsed`]: scalesim_trace::EventKind::HeapUsed

use std::collections::{BTreeMap, BTreeSet};

use scalesim_simkit::SimTime;
use scalesim_trace::{CounterId, Counters};

use crate::{AuditCtx, Check, Finding};

/// The structural (counter-free) happens-before checks; always safe to run,
/// including on timeline prefixes inside the bisector.
pub(crate) fn check(ctx: &AuditCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    replay_handoffs(ctx, &mut findings);
    if ctx.complete {
        reconcile_safepoints(ctx, &mut findings);
        check_heap_samples(ctx, &mut findings);
    }
    findings
}

/// Logical-clock replay over monitor hold spans: per-monitor mutual
/// exclusion, and (complete timelines) release-before-grant on handoffs.
///
/// Handoffs on one monitor are totally ordered, so the replay uses the
/// FastTrack-style epoch form of vector clocks: each release publishes the
/// releaser's scalar tick, and the acquirer joins with a scalar max — O(1)
/// per hold instead of a vector clone per hold.
fn replay_handoffs(ctx: &AuditCtx, findings: &mut Vec<Finding>) {
    let n_tracks = ctx.tracks.len();
    // (end, raw owner, release epoch) of the last processed hold per
    // monitor, indexed by interned track.
    let mut last_release: Vec<Option<(SimTime, u64, u64)>> = vec![None; n_tracks];
    // Interned thread → logical tick, advanced on every acquisition and
    // joined with the published epoch across each handoff edge.
    let mut clocks: Vec<u64> = vec![0; ctx.threads.len()];
    let mut hold_ends: Vec<Vec<u64>> = vec![Vec::new(); n_tracks];
    for h in &ctx.holds {
        let tick = &mut clocks[h.t as usize];
        if let Some((prev_end, prev_owner, prev_epoch)) = last_release[h.m as usize] {
            if prev_end > h.start && prev_owner != h.owner {
                findings.push(Finding {
                    check: Check::HappensBefore,
                    class: "hold-overlap",
                    detail: format!(
                        "monitor{} held by thread {} from {}ns while thread \
                         {prev_owner}'s hold runs to {}ns — mutual exclusion violated",
                        h.track,
                        h.owner,
                        h.start.as_nanos(),
                        prev_end.as_nanos()
                    ),
                    at: h.start,
                    track: h.track,
                    thread: Some(h.owner),
                    expected: false,
                });
            }
            // Handoff edge: the acquirer's clock joins the release epoch.
            if *tick < prev_epoch {
                *tick = prev_epoch;
            }
        }
        *tick += 1;
        last_release[h.m as usize] = Some((h.end, h.owner, *tick));
        hold_ends[h.m as usize].push(h.end.as_nanos());
    }

    if ctx.complete {
        // Every granted (closed) wait must be ordered after a release: some
        // hold on the same monitor ends exactly at the grant instant. The
        // granting hold always outlives the wait window, so it is never
        // suppressed as zero-length. Hold ends arrive in start order, not
        // end order, so sort each monitor's list before the lookups.
        for ends in &mut hold_ends {
            ends.sort_unstable();
        }
        for w in &ctx.waits {
            let grant = w.end;
            let released = hold_ends[w.m as usize]
                .binary_search(&grant.as_nanos())
                .is_ok();
            if !released {
                findings.push(Finding {
                    check: Check::HappensBefore,
                    class: "grant-without-release",
                    detail: format!(
                        "thread {} was granted monitor{} at {}ns but no hold ends there — \
                         grant is not ordered after a release",
                        w.thread,
                        w.track,
                        grant.as_nanos()
                    ),
                    at: grant,
                    track: w.track,
                    thread: Some(w.thread),
                    expected: ctx.aborted,
                });
            }
        }
    }
}

/// Reconciles stop-the-world safepoint spans against the GC work and
/// injected stalls recorded at the same instant.
fn reconcile_safepoints(ctx: &AuditCtx, findings: &mut Vec<Finding>) {
    // Distinct pause durations per start instant: every live thread gets an
    // identical safepoint span per pause, and two pauses can share a start
    // (a minor collection immediately followed by a concurrent-cycle
    // initial mark), so the group is a set of durations. The context's
    // `gc_stw` bucket already excludes GcLocalMinor and GcConcWork, which
    // run concurrently with the mutators and take no safepoint.
    let mut pauses: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for &(at, dur) in &ctx.safepoints {
        pauses.entry(at).or_default().insert(dur);
    }
    let mut gc_work: BTreeMap<u64, u64> = BTreeMap::new();
    for &(at, dur) in &ctx.gc_stw {
        *gc_work.entry(at).or_insert(0) += dur;
    }
    let mut stall_extra: BTreeMap<u64, u64> = BTreeMap::new();
    for &(at, extra) in &ctx.stalls {
        *stall_extra.entry(at.as_nanos()).or_insert(0) += extra;
    }

    for (&start, durs) in &pauses {
        let applied: u64 = durs.iter().sum();
        let modelled = gc_work.get(&start).copied().unwrap_or(0);
        let injected = stall_extra.get(&start).copied().unwrap_or(0);
        let deficit = i128::from(applied) - i128::from(modelled);
        if deficit == 0 && injected == 0 {
            continue;
        }
        if deficit == i128::from(injected) && injected > 0 {
            findings.push(Finding {
                check: Check::HappensBefore,
                class: "gc-stall",
                detail: format!(
                    "stop-the-world pause at {start}ns ran {injected}ns over its modelled GC \
                     work ({modelled}ns) — matches the injected gc-stall"
                ),
                at: SimTime::from_nanos(start),
                track: 0,
                thread: None,
                expected: true,
            });
        } else {
            findings.push(Finding {
                check: Check::HappensBefore,
                class: "safepoint-mismatch",
                detail: format!(
                    "stop-the-world pause at {start}ns applied {applied}ns but the GC work \
                     recorded there models {modelled}ns (injected stall: {injected}ns)"
                ),
                at: SimTime::from_nanos(start),
                track: 0,
                thread: None,
                expected: false,
            });
        }
    }
}

/// Heap pre/post sample pairs: adjacent, ordered, non-increasing across
/// each collection. Heaplet-mode local collections interleave their samples
/// (they don't stop the world), so the check is skipped when any
/// `GcLocalMinor` span is present.
fn check_heap_samples(ctx: &AuditCtx, findings: &mut Vec<Finding>) {
    if ctx.local_minor_gcs > 0 {
        return;
    }
    let samples = &ctx.heap_samples;
    if !samples.len().is_multiple_of(2) {
        let &(track, at, _) = samples.last().expect("odd count implies non-empty");
        findings.push(Finding {
            check: Check::HappensBefore,
            class: "heap-sample-order",
            detail: format!(
                "odd number of heap samples ({}) — a collection recorded a pre-GC sample \
                 without its post-GC mate",
                samples.len()
            ),
            at,
            track,
            thread: None,
            expected: ctx.aborted,
        });
        return;
    }
    for pair in samples.chunks(2) {
        let ((_, pre_at, pre_bytes), (post_track, post_at, post_bytes)) = (pair[0], pair[1]);
        if post_at < pre_at || post_bytes > pre_bytes {
            findings.push(Finding {
                check: Check::HappensBefore,
                class: "heap-sample-order",
                detail: format!(
                    "collection sampled {pre_bytes} bytes at {}ns before and {post_bytes} \
                     bytes at {}ns after — heap grew across a collection",
                    pre_at.as_nanos(),
                    post_at.as_nanos()
                ),
                at: post_at,
                track: post_track,
                thread: None,
                expected: false,
            });
        }
    }
}

/// Counter-registry consistency; only meaningful on complete timelines.
pub(crate) fn counter_checks(ctx: &AuditCtx, counters: &Counters) -> Vec<Finding> {
    let enqueues = ctx.enqueues.len() as u64;
    let holds = ctx.holds.len() as u64;
    let minor = ctx.minor_gcs;
    let local_minor = ctx.local_minor_gcs;
    let full = ctx.full_gcs;
    let conc = ctx.conc_phases;
    let chaos =
        (ctx.drops.len() + ctx.spurious.len() + ctx.stalls.len() + ctx.req_drops.len()) as u64;
    let stw_pairs = {
        let mut pairs: BTreeSet<(u64, u64)> = BTreeSet::new();
        for &(at, dur) in &ctx.safepoints {
            pairs.insert((at, dur));
        }
        pairs.len() as u64
    };

    let mut findings = Vec::new();
    let mut mismatch = |counter: CounterId, counted: u64, observed: u64, what: &str| {
        findings.push(Finding {
            check: Check::HappensBefore,
            class: "counter-mismatch",
            detail: format!(
                "counter {counter:?} reads {counted} but the timeline records {observed} {what}"
            ),
            at: SimTime::ZERO,
            track: 0,
            thread: None,
            expected: false,
        });
    };

    let exact = [
        (CounterId::LockContentions, enqueues, "monitor enqueues"),
        (CounterId::MinorGcs, minor, "minor-GC spans"),
        (
            CounterId::LocalMinorGcs,
            local_minor,
            "local minor-GC spans",
        ),
        (CounterId::FullGcs, full, "full-GC spans"),
        (CounterId::ConcGcPhases, conc, "concurrent GC phase spans"),
        (CounterId::ChaosInjections, chaos, "chaos instants"),
    ];
    for (counter, observed, what) in exact {
        let counted = counters.get(counter);
        if counted != observed {
            mismatch(counter, counted, observed, what);
        }
    }
    // One-sided: holds still open at run end are never emitted, and a
    // safepoint pause with no live threads emits no spans.
    if holds > counters.get(CounterId::LockAcquires) {
        mismatch(
            CounterId::LockAcquires,
            counters.get(CounterId::LockAcquires),
            holds,
            "closed hold spans (more than acquisitions)",
        );
    }
    if stw_pairs > counters.get(CounterId::StwPauses) {
        mismatch(
            CounterId::StwPauses,
            counters.get(CounterId::StwPauses),
            stw_pairs,
            "distinct safepoint pauses (more than counted)",
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{instant, sorted, span};
    use scalesim_trace::EventKind::{
        ChaosGcStall, GcConcMark, GcMinor, HeapUsed, MonitorHold, MonitorWait, ThreadSafepoint,
    };
    use scalesim_trace::TimelineEvent;

    fn run(events: Vec<TimelineEvent>, aborted: bool) -> Vec<Finding> {
        let events = sorted(events);
        check(&AuditCtx::new(&events, aborted, true))
    }

    fn sample(track: u32, at: u64, bytes: u64) -> TimelineEvent {
        instant(HeapUsed, track, at, bytes)
    }

    #[test]
    fn sequential_holds_and_matched_grant_are_clean() {
        let findings = run(
            vec![
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorWait, 0, 10, 30, 1),
                span(MonitorHold, 0, 30, 45, 1),
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn overlapping_holds_violate_mutual_exclusion() {
        let findings = run(
            vec![
                span(MonitorHold, 0, 0, 30, 0),
                span(MonitorHold, 0, 20, 45, 1),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "hold-overlap");
        assert_eq!(findings[0].thread, Some(1));
        assert_eq!(findings[0].at.as_nanos(), 20);
        assert!(!findings[0].expected);
    }

    #[test]
    fn grant_with_no_matching_release_is_flagged() {
        let findings = run(
            vec![
                span(MonitorHold, 0, 0, 25, 0),  // releases at 25...
                span(MonitorWait, 0, 10, 30, 1), // ...but the grant is at 30
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "grant-without-release");
        assert_eq!(findings[0].at.as_nanos(), 30);
    }

    #[test]
    fn safepoints_matching_gc_work_are_clean() {
        let findings = run(
            vec![
                span(GcMinor, 0, 100, 140, 4096),
                span(ThreadSafepoint, 0, 100, 140, 0),
                span(ThreadSafepoint, 1, 100, 140, 0),
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn double_pause_at_one_instant_reconciles() {
        // Minor GC (40ns) and concurrent initial mark (15ns) both start at
        // t=100: distinct safepoint durations sum against both spans.
        let findings = run(
            vec![
                span(GcMinor, 0, 100, 140, 4096),
                span(GcConcMark, 1, 100, 115, 0),
                span(ThreadSafepoint, 0, 100, 140, 0),
                span(ThreadSafepoint, 1, 100, 140, 0),
                span(ThreadSafepoint, 0, 100, 115, 0),
                span(ThreadSafepoint, 1, 100, 115, 0),
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn injected_stall_is_an_expected_gc_stall_finding() {
        // Safepoint runs 60ns over a 40ns modelled pause; a ChaosGcStall
        // instant explains exactly the 20ns difference.
        let findings = run(
            vec![
                span(GcMinor, 0, 100, 140, 4096),
                instant(ChaosGcStall, 0, 100, 20),
                span(ThreadSafepoint, 0, 100, 160, 0),
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "gc-stall");
        assert!(findings[0].expected);
        assert_eq!(findings[0].at.as_nanos(), 100);
    }

    #[test]
    fn unexplained_pause_deficit_is_a_safepoint_mismatch() {
        let findings = run(
            vec![
                span(GcMinor, 0, 100, 140, 4096),
                span(ThreadSafepoint, 0, 100, 170, 0), // 30ns unexplained
            ],
            false,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "safepoint-mismatch");
        assert!(!findings[0].expected);
    }

    #[test]
    fn heap_pairs_must_not_grow_across_a_collection() {
        let findings = run(vec![sample(0, 100, 5000), sample(0, 140, 6000)], false);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "heap-sample-order");
        let findings = run(vec![sample(0, 100, 5000), sample(0, 140, 3000)], false);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn heap_check_skipped_in_heaplet_mode() {
        let findings = run(
            vec![
                span(scalesim_trace::EventKind::GcLocalMinor, 0, 90, 120, 64),
                sample(0, 100, 5000),
                sample(0, 140, 6000),
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn counter_equalities_catch_divergence() {
        let events = sorted(vec![
            instant(scalesim_trace::EventKind::MonitorEnqueue, 0, 10, 1),
            span(GcMinor, 0, 100, 140, 4096),
        ]);
        let ctx = AuditCtx::new(&events, false, true);
        let mut counters = Counters::new();
        counters.inc(CounterId::LockContentions);
        counters.inc(CounterId::MinorGcs);
        assert!(counter_checks(&ctx, &counters).is_empty());
        counters.inc(CounterId::MinorGcs); // now reads 2 vs 1 span
        let findings = counter_checks(&ctx, &counters);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].class, "counter-mismatch");
        assert!(
            findings[0].detail.contains("MinorGcs"),
            "{}",
            findings[0].detail
        );
    }

    #[test]
    fn request_drop_instants_count_as_chaos_injections() {
        let events = sorted(vec![
            instant(scalesim_trace::EventKind::ChaosRequestDrop, 0, 10, 7),
            instant(ChaosGcStall, 0, 20, 5),
        ]);
        let ctx = AuditCtx::new(&events, false, true);
        let mut counters = Counters::new();
        counters.inc(CounterId::ChaosInjections);
        counters.inc(CounterId::ChaosInjections);
        assert!(counter_checks(&ctx, &counters).is_empty());
        // Without the request-drop bucket the tally would read one short.
        let mut short = Counters::new();
        short.inc(CounterId::ChaosInjections);
        let findings = counter_checks(&ctx, &short);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].detail.contains("chaos instants"),
            "{}",
            findings[0].detail
        );
    }

    #[test]
    fn open_holds_do_not_trip_the_acquire_count() {
        let events = sorted(vec![span(MonitorHold, 0, 0, 30, 0)]);
        let ctx = AuditCtx::new(&events, false, true);
        let mut counters = Counters::new();
        counters.inc(CounterId::LockAcquires);
        counters.inc(CounterId::LockAcquires); // 2 acquires, 1 closed hold
        assert!(counter_checks(&ctx, &counters).is_empty());
        let findings = counter_checks(&ctx, &Counters::new()); // 0 acquires
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].detail.contains("LockAcquires"),
            "{}",
            findings[0].detail
        );
    }
}
