//! # scalesim-objtrace
//!
//! Elephant-Tracks-style object lifetime tracing.
//!
//! The paper adopts Elephant Tracks (Ricci et al., ISMM'13) to produce "an
//! in-order trace of events pertaining to each object" and measures each
//! object's **lifespan** as the amount of heap memory allocated to other
//! objects between its creation and its death (§II-A). [`ObjectTracer`] is
//! the simulated equivalent: the runtime reports every allocation and
//! death (with the allocation-clock lifespan computed by the heap), and
//! the tracer maintains the lifespan distribution that Figures 1c/1d plot
//! as CDFs.
//!
//! Retention is configurable: [`Retention::HistogramOnly`] keeps a
//! log-bucketed distribution (constant memory, the default for big
//! sweeps); [`Retention::Full`] additionally keeps exact lifespans and the
//! in-order event list, matching what Elephant Tracks itself emits.
//!
//! ```
//! use scalesim_objtrace::{ObjectTracer, Retention};
//!
//! let mut tracer = ObjectTracer::new(Retention::Full);
//! let obj = tracer.on_alloc(0, 64, 64);
//! tracer.on_death(obj, 512, 576);
//! assert_eq!(tracer.deaths(), 1);
//! assert_eq!(tracer.cdf().quantile(1.0), Some(512));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format;

pub use format::{format_trace, parse_trace, ParseTraceError};

use std::fmt;

use scalesim_metrics::{Cdf, LogHistogram};

/// A monotonically increasing per-tracer object sequence number (the
/// trace-file identity of an object, distinct from heap handles).
pub type ObjSeq = u64;

/// One record in the in-order object trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An object was allocated.
    Alloc {
        /// Trace identity of the object.
        obj: ObjSeq,
        /// Allocating thread index.
        thread: usize,
        /// Object size in bytes.
        size: u64,
        /// Allocation-clock reading just after the allocation.
        clock: u64,
    },
    /// An object died (was last used).
    Death {
        /// Trace identity of the object.
        obj: ObjSeq,
        /// Bytes allocated to other objects between birth and death.
        lifespan: u64,
        /// Allocation-clock reading at death.
        clock: u64,
    },
}

/// How much the tracer retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Log-bucketed lifespan histogram only (constant memory).
    #[default]
    HistogramOnly,
    /// Histogram + exact lifespans + the in-order event trace.
    Full,
}

/// The object-lifetime profiler.
#[derive(Debug, Clone, Default)]
pub struct ObjectTracer {
    retention: Retention,
    hist: LogHistogram,
    exact: Vec<u64>,
    events: Vec<TraceEvent>,
    next_seq: ObjSeq,
    /// Allocating thread per live trace id (only under full retention).
    owners: Vec<usize>,
    per_thread: Vec<LogHistogram>,
    allocations: u64,
    allocated_bytes: u64,
    deaths: u64,
    censored: u64,
}

impl ObjectTracer {
    /// Creates a tracer with the given retention mode.
    #[must_use]
    pub fn new(retention: Retention) -> Self {
        ObjectTracer {
            retention,
            ..ObjectTracer::default()
        }
    }

    /// Records an allocation; returns the object's trace identity.
    pub fn on_alloc(&mut self, thread: usize, size: u64, clock: u64) -> ObjSeq {
        let obj = self.next_seq;
        self.next_seq += 1;
        self.allocations += 1;
        self.allocated_bytes += size;
        if self.retention == Retention::Full {
            self.events.push(TraceEvent::Alloc {
                obj,
                thread,
                size,
                clock,
            });
            debug_assert_eq!(self.owners.len() as u64, obj);
            self.owners.push(thread);
        }
        obj
    }

    /// Records a death with its allocation-clock lifespan.
    pub fn on_death(&mut self, obj: ObjSeq, lifespan: u64, clock: u64) {
        self.deaths += 1;
        self.hist.record(lifespan);
        if self.retention == Retention::Full {
            self.exact.push(lifespan);
            self.events.push(TraceEvent::Death {
                obj,
                lifespan,
                clock,
            });
            let thread = self.owners[obj as usize];
            if self.per_thread.len() <= thread {
                self.per_thread.resize(thread + 1, LogHistogram::new());
            }
            self.per_thread[thread].record(lifespan);
        }
    }

    /// Records an object still alive at program exit. Its lifespan is
    /// right-censored at the final clock; it is included in the
    /// distribution (as Elephant Tracks does, treating VM shutdown as the
    /// death time) and counted separately.
    pub fn on_censored(&mut self, obj: ObjSeq, lifespan_so_far: u64, clock: u64) {
        self.censored += 1;
        self.on_death(obj, lifespan_so_far, clock);
        self.deaths -= 1; // counted as censored, not as a true death
    }

    /// Objects allocated.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Bytes allocated.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Objects that died before program exit.
    #[must_use]
    pub fn deaths(&self) -> u64 {
        self.deaths
    }

    /// Objects still alive at program exit.
    #[must_use]
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// The lifespan distribution (log-bucketed).
    #[must_use]
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Lifespan CDF: exact under [`Retention::Full`], bucket-resolution
    /// otherwise.
    #[must_use]
    pub fn cdf(&self) -> Cdf {
        match self.retention {
            Retention::Full => Cdf::from_samples(self.exact.clone()),
            Retention::HistogramOnly => Cdf::from_histogram(&self.hist),
        }
    }

    /// Fraction of recorded lifespans strictly below `bytes` — e.g. the
    /// paper's "over 80 % of objects with lifespans of less than 1 KB".
    #[must_use]
    pub fn fraction_below(&self, bytes: u64) -> f64 {
        self.hist.fraction_below(bytes)
    }

    /// Per-allocating-thread lifespan distributions, when the full trace
    /// is retained (`None` otherwise). Index = thread; threads that never
    /// allocated have empty histograms.
    #[must_use]
    pub fn per_thread_histograms(&self) -> Option<&[LogHistogram]> {
        (self.retention == Retention::Full).then_some(self.per_thread.as_slice())
    }

    /// The in-order event trace, when retained.
    #[must_use]
    pub fn events(&self) -> Option<&[TraceEvent]> {
        (self.retention == Retention::Full).then_some(self.events.as_slice())
    }

    /// Captures the tracer's complete internal state for lossless
    /// persistence; [`ObjectTracer::from_snapshot`] rebuilds a tracer
    /// that is `Debug`-identical to the original.
    #[must_use]
    pub fn snapshot(&self) -> TracerSnapshot {
        TracerSnapshot {
            retention: self.retention,
            hist: self.hist.clone(),
            exact: self.exact.clone(),
            events: self.events.clone(),
            next_seq: self.next_seq,
            owners: self.owners.clone(),
            per_thread: self.per_thread.clone(),
            allocations: self.allocations,
            allocated_bytes: self.allocated_bytes,
            deaths: self.deaths,
            censored: self.censored,
        }
    }

    /// Rebuilds a tracer from a [`TracerSnapshot`]. The snapshot is
    /// trusted as-is; this is a persistence hook, not a constructor for
    /// new traces.
    #[must_use]
    pub fn from_snapshot(s: TracerSnapshot) -> Self {
        ObjectTracer {
            retention: s.retention,
            hist: s.hist,
            exact: s.exact,
            events: s.events,
            next_seq: s.next_seq,
            owners: s.owners,
            per_thread: s.per_thread,
            allocations: s.allocations,
            allocated_bytes: s.allocated_bytes,
            deaths: s.deaths,
            censored: s.censored,
        }
    }

    /// Merges another tracer's distribution into this one (used to pool
    /// per-thread tracers). Event traces and per-thread attributions are
    /// not merged — ordering and thread identities across tracers are
    /// undefined.
    pub fn merge_distribution(&mut self, other: &ObjectTracer) {
        self.hist.merge(&other.hist);
        self.exact.extend_from_slice(&other.exact);
        self.allocations += other.allocations;
        self.allocated_bytes += other.allocated_bytes;
        self.deaths += other.deaths;
        self.censored += other.censored;
    }
}

/// The complete raw state of an [`ObjectTracer`], exposed for lossless
/// persistence (checkpoint/resume). Produced by
/// [`ObjectTracer::snapshot`], consumed by [`ObjectTracer::from_snapshot`].
#[derive(Debug, Clone)]
pub struct TracerSnapshot {
    /// Retention mode of the tracer.
    pub retention: Retention,
    /// The pooled lifespan histogram.
    pub hist: LogHistogram,
    /// Exact lifespans (full retention only).
    pub exact: Vec<u64>,
    /// The in-order event trace (full retention only).
    pub events: Vec<TraceEvent>,
    /// The next object sequence number to assign.
    pub next_seq: ObjSeq,
    /// Allocating thread per trace id (full retention only).
    pub owners: Vec<usize>,
    /// Per-allocating-thread lifespan histograms (full retention only).
    pub per_thread: Vec<LogHistogram>,
    /// Objects allocated.
    pub allocations: u64,
    /// Bytes allocated.
    pub allocated_bytes: u64,
    /// True deaths recorded.
    pub deaths: u64,
    /// Right-censored objects recorded.
    pub censored: u64,
}

impl fmt::Display for ObjectTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} allocs ({} B), {} deaths, {} censored",
            self.allocations, self.allocated_bytes, self.deaths, self.censored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_death_round_trip() {
        let mut t = ObjectTracer::new(Retention::Full);
        let a = t.on_alloc(0, 100, 100);
        let b = t.on_alloc(1, 50, 150);
        assert_ne!(a, b);
        t.on_death(a, 50, 150);
        assert_eq!(t.allocations(), 2);
        assert_eq!(t.allocated_bytes(), 150);
        assert_eq!(t.deaths(), 1);
        let events = t.events().unwrap();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[2], TraceEvent::Death { obj, lifespan: 50, .. } if obj == a));
    }

    #[test]
    fn histogram_only_drops_events_but_keeps_distribution() {
        let mut t = ObjectTracer::new(Retention::HistogramOnly);
        let a = t.on_alloc(0, 10, 10);
        t.on_death(a, 2048, 2058);
        assert!(t.events().is_none());
        assert_eq!(t.histogram().count(), 1);
        assert!(t.fraction_below(4096) > 0.99);
    }

    #[test]
    fn censored_objects_count_separately_but_enter_distribution() {
        let mut t = ObjectTracer::new(Retention::Full);
        let a = t.on_alloc(0, 10, 10);
        t.on_censored(a, 999, 1009);
        assert_eq!(t.deaths(), 0);
        assert_eq!(t.censored(), 1);
        assert_eq!(t.histogram().count(), 1);
        assert_eq!(t.cdf().quantile(1.0), Some(999));
    }

    #[test]
    fn exact_cdf_under_full_retention() {
        let mut t = ObjectTracer::new(Retention::Full);
        for (i, l) in [100u64, 200, 300, 400].iter().enumerate() {
            let o = t.on_alloc(0, 8, 8 * (i as u64 + 1));
            t.on_death(o, *l, 0);
        }
        let cdf = t.cdf();
        assert_eq!(cdf.fraction_at_most(200), 0.5);
        assert_eq!(cdf.quantile(1.0), Some(400));
    }

    #[test]
    fn snapshot_round_trip_is_debug_identical() {
        let mut t = ObjectTracer::new(Retention::Full);
        let a = t.on_alloc(0, 100, 100);
        let b = t.on_alloc(2, 50, 150);
        t.on_death(a, 50, 150);
        t.on_censored(b, 7, 157);
        let back = ObjectTracer::from_snapshot(t.snapshot());
        assert_eq!(format!("{t:?}"), format!("{back:?}"));
        // And a histogram-only tracer, whose optional state stays empty.
        let mut h = ObjectTracer::new(Retention::HistogramOnly);
        let o = h.on_alloc(0, 8, 8);
        h.on_death(o, 2048, 2056);
        let hb = ObjectTracer::from_snapshot(h.snapshot());
        assert_eq!(format!("{h:?}"), format!("{hb:?}"));
    }

    #[test]
    fn per_thread_histograms_attribute_by_allocator() {
        let mut t = ObjectTracer::new(Retention::Full);
        let a = t.on_alloc(0, 8, 8);
        let b = t.on_alloc(3, 8, 16);
        t.on_death(a, 100, 116);
        t.on_death(b, 9000, 9016);
        let per = t.per_thread_histograms().unwrap();
        assert_eq!(per.len(), 4);
        assert_eq!(per[0].count(), 1);
        assert_eq!(per[0].max(), Some(100));
        assert_eq!(per[3].max(), Some(9000));
        assert!(per[1].is_empty());

        let h = ObjectTracer::new(Retention::HistogramOnly);
        assert!(h.per_thread_histograms().is_none());
    }

    #[test]
    fn merge_pools_distributions() {
        let mut a = ObjectTracer::new(Retention::Full);
        let o = a.on_alloc(0, 8, 8);
        a.on_death(o, 100, 108);
        let mut b = ObjectTracer::new(Retention::Full);
        let o = b.on_alloc(1, 8, 8);
        b.on_death(o, 300, 308);
        a.merge_distribution(&b);
        assert_eq!(a.allocations(), 2);
        assert_eq!(a.deaths(), 2);
        assert_eq!(a.cdf().len(), 2);
    }

    #[test]
    fn display_summarizes() {
        let t = ObjectTracer::new(Retention::HistogramOnly);
        assert!(t.to_string().contains("0 allocs"));
    }
}
