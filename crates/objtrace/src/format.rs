//! Elephant-Tracks-style text trace format.
//!
//! Elephant Tracks emits a line-oriented trace of object events; this
//! module provides a faithful-in-spirit writer and parser so traces can
//! be exported for external analysis (or imported from other tools):
//!
//! ```text
//! A <obj> <size> <thread> <clock>    # allocation
//! D <obj> <lifespan> <clock>         # death
//! ```
//!
//! All values are decimal; one event per line; `#` starts a comment.

use std::fmt::Write as _;

use crate::TraceEvent;

/// Renders events in the text format. Inverse of [`parse_trace`].
///
/// # Examples
///
/// ```
/// use scalesim_objtrace::{format_trace, parse_trace, TraceEvent};
///
/// let events = vec![
///     TraceEvent::Alloc { obj: 0, thread: 2, size: 64, clock: 64 },
///     TraceEvent::Death { obj: 0, lifespan: 128, clock: 192 },
/// ];
/// let text = format_trace(&events);
/// assert_eq!(parse_trace(&text).unwrap(), events);
/// ```
#[must_use]
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 24);
    for event in events {
        match *event {
            TraceEvent::Alloc {
                obj,
                thread,
                size,
                clock,
            } => {
                writeln!(out, "A {obj} {size} {thread} {clock}").expect("string write");
            }
            TraceEvent::Death {
                obj,
                lifespan,
                clock,
            } => {
                writeln!(out, "D {obj} {lifespan} {clock}").expect("string write");
            }
        }
    }
    out
}

/// A malformed line in a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the text format produced by [`format_trace`].
///
/// Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let kind = fields.next().expect("nonempty after trim");
        let mut num = |name: &str| -> Result<u64, ParseTraceError> {
            let field = fields.next().ok_or_else(|| ParseTraceError {
                line,
                message: format!("missing field {name}"),
            })?;
            field.parse().map_err(|_| ParseTraceError {
                line,
                message: format!("bad {name}: {field:?}"),
            })
        };
        let event = match kind {
            "A" => TraceEvent::Alloc {
                obj: num("obj")?,
                size: num("size")?,
                thread: num("thread")? as usize,
                clock: num("clock")?,
            },
            "D" => TraceEvent::Death {
                obj: num("obj")?,
                lifespan: num("lifespan")?,
                clock: num("clock")?,
            },
            other => {
                return Err(ParseTraceError {
                    line,
                    message: format!("unknown event kind {other:?}"),
                })
            }
        };
        if fields.next().is_some() {
            return Err(ParseTraceError {
                line,
                message: "trailing fields".to_owned(),
            });
        }
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Alloc {
                obj: 0,
                thread: 1,
                size: 128,
                clock: 128,
            },
            TraceEvent::Alloc {
                obj: 1,
                thread: 2,
                size: 64,
                clock: 192,
            },
            TraceEvent::Death {
                obj: 0,
                lifespan: 64,
                clock: 192,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let text = format_trace(&sample());
        assert_eq!(parse_trace(&text).unwrap(), sample());
    }

    #[test]
    fn format_is_line_oriented() {
        let text = format_trace(&sample());
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("A 0 128 1 128\n"));
        assert!(text.contains("D 0 64 192\n"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nA 5 10 0 10   # inline comment\n";
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TraceEvent::Alloc { obj: 5, .. }));
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_trace("A 1 2 3 4\nX 9\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown event kind"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn missing_and_bad_fields_error() {
        assert!(parse_trace("A 1 2")
            .unwrap_err()
            .message
            .contains("missing"));
        assert!(parse_trace("D 1 x 3").unwrap_err().message.contains("bad"));
        assert!(parse_trace("A 1 2 3 4 5")
            .unwrap_err()
            .message
            .contains("trailing"));
    }

    #[test]
    fn tracer_events_export_directly() {
        use crate::{ObjectTracer, Retention};
        let mut t = ObjectTracer::new(Retention::Full);
        let o = t.on_alloc(0, 100, 100);
        t.on_death(o, 50, 150);
        let text = format_trace(t.events().unwrap());
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, t.events().unwrap());
    }
}
