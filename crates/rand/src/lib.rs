//! A vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The real `rand` crate cannot be built in this repository's offline
//! environment, so this crate provides the exact surface `scalesim` uses
//! under the same import paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`). The generator is xoshiro256++ seeded through a
//! SplitMix64 expansion — deterministic across platforms and releases,
//! which is the property the simulator actually depends on (the upstream
//! crate explicitly does *not* promise stream stability across versions).
//!
//! Only the methods the workspace calls are implemented: `gen`,
//! `gen_range` (half-open and inclusive integer ranges, half-open float
//! ranges), and `gen_bool`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value interface.
///
/// `next_u64` is the only required method; everything else derives from
/// it deterministically.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        next_f64(self) < p
    }
}

/// A 53-bit-precision uniform draw in `[0, 1)`.
fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[0, span)` via the widening-multiply reduction.
///
/// The modulo bias is at most 2⁻⁶⁴·span — far below anything a simulation
/// statistic can resolve — and avoiding rejection keeps draws O(1).
fn bounded<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

/// Element types drawable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                match (hi.wrapping_sub(lo) as u64).checked_add(1) {
                    Some(span) => lo.wrapping_add(bounded(rng, span) as $t),
                    // Full-width range: every raw draw is in range.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_sample_uniform!(u64, usize, u32, u8, i64, i32);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range on empty range");
        lo + next_f64(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range on empty range");
        lo + next_f64(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Unlike the upstream `StdRng` (which documents its stream as
    /// unstable across crate versions), this generator's output is part
    /// of the vendored contract: same seed, same stream, forever.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard recommendation for
            // seeding xoshiro state from a single word.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        let mut r2 = StdRng::seed_from_u64(12);
        assert!(!(0..100).any(|_| r2.gen_bool(0.0)));
        let mut r3 = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| r3.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
