//! The per-sweep analytics artifact: deterministic JSON + text report.
//!
//! `analytics.json` travels through the same lossless [`JsonValue`]
//! writer the checkpoint layer uses, so it contains no floats — every
//! real-valued quantity is a fixed-precision (6-digit) decimal string,
//! making the artifact byte-identical across live runs, checkpoint
//! resumes and campaign merges (none of its inputs read `host_ns`).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use scalesim_core::JsonValue;
use scalesim_metrics::{fmt2, fmt_pct, Table};

use crate::attribution::{Percentiles, TimeProfile};
use crate::usl::{UslClass, UslFit};

/// Schema version of `analytics.json`.
pub const ANALYTICS_VERSION: u64 = 1;

/// Everything the analytics pass derives for one workload's sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAnalysis {
    /// Application name.
    pub app: String,
    /// The paper's a-priori label (`"scalable"` / `"non-scalable"`).
    pub expected: String,
    /// `(threads, throughput items/s)` per sweep point; quarantined
    /// cells carry zero throughput and are skipped by the fitter.
    pub points: Vec<(usize, f64)>,
    /// The fitted USL parameters (`None` when no cell completed).
    pub fit: Option<UslFit>,
    /// Automatic classification of the fitted curve.
    pub class: Option<UslClass>,
    /// Time attribution at the largest completed thread count.
    pub profile: TimeProfile,
    /// Monitor-hold duration percentiles (ns) at that point.
    pub hold: Percentiles,
    /// Lock-acquisition wait percentiles (ns) at that point.
    pub wait: Percentiles,
}

impl WorkloadAnalysis {
    /// Whether the USL classification agrees with the paper's label.
    #[must_use]
    pub fn matches_paper(&self) -> bool {
        self.class
            .is_some_and(|c| c.matches_expected(&self.expected))
    }
}

/// The full analytics artifact for one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsReport {
    /// Sweep seed.
    pub seed: u64,
    /// Thread counts of the sweep grid.
    pub threads: Vec<usize>,
    /// One analysis per workload, in sweep order.
    pub workloads: Vec<WorkloadAnalysis>,
}

impl AnalyticsReport {
    /// Whether every workload's USL class matches the paper's split.
    #[must_use]
    pub fn all_match_paper(&self) -> bool {
        self.workloads.iter().all(WorkloadAnalysis::matches_paper)
    }

    /// The artifact as a JSON value (without the fingerprint field).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("v", JsonValue::U64(ANALYTICS_VERSION)),
            ("seed", JsonValue::U64(self.seed)),
            (
                "threads",
                JsonValue::Arr(
                    self.threads
                        .iter()
                        .map(|&t| JsonValue::U64(t as u64))
                        .collect(),
                ),
            ),
            (
                "workloads",
                JsonValue::Arr(self.workloads.iter().map(workload_to_json).collect()),
            ),
            ("all_match_paper", JsonValue::Bool(self.all_match_paper())),
        ])
    }

    /// Deterministic fingerprint over the fingerprint-less JSON text.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.to_json().to_string().hash(&mut h);
        h.finish()
    }

    /// The serialized artifact: the JSON object with its own
    /// fingerprint spliced in as the last key.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut v = self.to_json();
        if let JsonValue::Obj(pairs) = &mut v {
            pairs.push((
                "fingerprint".to_owned(),
                JsonValue::Str(format!("{:016x}", self.fingerprint())),
            ));
        }
        format!("{v}\n")
    }

    /// Renders the human-readable text report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut usl = Table::new(vec![
            "app", "expected", "class", "lambda", "sigma", "kappa", "peak n*", "collapse", "rms",
        ]);
        for w in &self.workloads {
            let (class, fit) = (w.class, w.fit);
            let cells = match fit {
                Some(f) => vec![
                    w.app.clone(),
                    w.expected.clone(),
                    class.map_or("-", UslClass::label).to_owned(),
                    fmt2(f.lambda),
                    format!("{:.4}", f.sigma),
                    format!("{:.5}", f.kappa),
                    fmt_inf(f.peak_concurrency()),
                    fmt_inf(f.collapse_point()),
                    format!("{:.4}", f.rms_residual),
                ],
                None => {
                    let mut c = vec![w.app.clone(), w.expected.clone()];
                    c.extend(std::iter::repeat_n("-".to_owned(), 7));
                    c
                }
            };
            usl.row(cells);
        }
        let mut attr = Table::new(vec![
            "app",
            "threads",
            "mutator",
            "gc",
            "lock wait",
            "hold p50/p95/p99/p999",
            "wait p50/p95/p99/p999",
        ]);
        for w in &self.workloads {
            attr.row(vec![
                w.app.clone(),
                w.profile.threads.to_string(),
                fmt_pct(1.0 - w.profile.gc_share()),
                fmt_pct(w.profile.gc_share()),
                fmt_pct(w.profile.lock_share()),
                fmt_pcts(&w.hold),
                fmt_pcts(&w.wait),
            ]);
        }
        format!(
            "USL fit per workload (seed {}, threads {:?}):\n{}\n\
             Time attribution at the top of the sweep:\n{}\n\
             paper split reproduced: {}\n",
            self.seed,
            self.threads,
            usl,
            attr,
            self.all_match_paper()
        )
    }
}

fn workload_to_json(w: &WorkloadAnalysis) -> JsonValue {
    let points = w
        .points
        .iter()
        .map(|&(t, x)| JsonValue::Arr(vec![JsonValue::U64(t as u64), f(x)]))
        .collect();
    let usl = match &w.fit {
        Some(fit) => obj(vec![
            ("lambda", f(fit.lambda)),
            ("sigma", f(fit.sigma)),
            ("kappa", f(fit.kappa)),
            ("peak_concurrency", f(fit.peak_concurrency())),
            ("collapse_point", f(fit.collapse_point())),
            ("rms_residual", f(fit.rms_residual)),
        ]),
        None => obj(vec![]),
    };
    let p = &w.profile;
    obj(vec![
        ("app", JsonValue::Str(w.app.clone())),
        ("expected", JsonValue::Str(w.expected.clone())),
        (
            "class",
            JsonValue::Str(w.class.map_or("unclassified", UslClass::label).to_owned()),
        ),
        ("points", JsonValue::Arr(points)),
        ("usl", usl),
        (
            "attribution",
            obj(vec![
                ("threads", JsonValue::U64(p.threads as u64)),
                ("running_ns", JsonValue::U64(p.running_ns)),
                ("runnable_wait_ns", JsonValue::U64(p.runnable_wait_ns)),
                ("lock_blocked_ns", JsonValue::U64(p.lock_blocked_ns)),
                ("condition_wait_ns", JsonValue::U64(p.condition_wait_ns)),
                ("gc_paused_ns", JsonValue::U64(p.gc_paused_ns)),
                ("wall_ns", JsonValue::U64(p.wall_ns)),
                ("mutator_wall_ns", JsonValue::U64(p.mutator_wall_ns)),
                ("gc_wall_ns", JsonValue::U64(p.gc_wall_ns)),
                ("gc_share", f(p.gc_share())),
                ("lock_share", f(p.lock_share())),
            ]),
        ),
        ("hold_ns", pcts_to_json(&w.hold)),
        ("wait_ns", pcts_to_json(&w.wait)),
        ("matches_paper", JsonValue::Bool(w.matches_paper())),
    ])
}

fn pcts_to_json(p: &Percentiles) -> JsonValue {
    obj(vec![
        ("count", JsonValue::U64(p.count)),
        ("p50", JsonValue::U64(p.p50)),
        ("p95", JsonValue::U64(p.p95)),
        ("p99", JsonValue::U64(p.p99)),
        ("p999", JsonValue::U64(p.p999)),
    ])
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Real values travel as fixed-precision decimal strings: the lossless
/// JSON layer has no float type, and 6 digits is reproducible exactly
/// wherever the same f64 bits arrive.
fn f(x: f64) -> JsonValue {
    JsonValue::Str(fmt_f64(x))
}

fn fmt_f64(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{x:.6}")
    }
}

fn fmt_inf(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_owned()
    } else {
        fmt2(x)
    }
}

fn fmt_pcts(p: &Percentiles) -> String {
    format!("{}/{}/{}/{}", p.p50, p.p95, p.p99, p.p999)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usl::fit_usl;

    fn sample() -> AnalyticsReport {
        let points = vec![(4, 380.0), (16, 1100.0), (48, 2100.0)];
        let float_pts: Vec<(f64, f64)> = points.iter().map(|&(t, x)| (t as f64, x)).collect();
        let fit = fit_usl(&float_pts);
        let class = fit.map(|fk| fk.classify(4.0, 48.0));
        AnalyticsReport {
            seed: 42,
            threads: vec![4, 16, 48],
            workloads: vec![WorkloadAnalysis {
                app: "sunflow".to_owned(),
                expected: "scalable".to_owned(),
                points,
                fit,
                class,
                profile: TimeProfile {
                    threads: 48,
                    running_ns: 1000,
                    runnable_wait_ns: 100,
                    lock_blocked_ns: 50,
                    condition_wait_ns: 25,
                    gc_paused_ns: 25,
                    wall_ns: 2000,
                    mutator_wall_ns: 1900,
                    gc_wall_ns: 100,
                },
                hold: Percentiles {
                    count: 10,
                    p50: 127,
                    p95: 255,
                    p99: 511,
                    p999: 511,
                },
                wait: Percentiles::default(),
            }],
        }
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let r = sample();
        let text = r.to_json_string();
        assert_eq!(text, r.to_json_string(), "serialization is deterministic");
        let v = JsonValue::parse(text.trim_end()).expect("valid json");
        assert_eq!(v.get("v").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(42));
        let fp = v.get("fingerprint").and_then(JsonValue::as_str).unwrap();
        assert_eq!(fp.len(), 16);
        assert_eq!(fp, format!("{:016x}", r.fingerprint()));
        let w = &v.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(w.get("app").and_then(JsonValue::as_str), Some("sunflow"));
        assert!(w.get("usl").unwrap().get("sigma").is_some());
        assert_eq!(
            w.get("hold_ns")
                .unwrap()
                .get("p99")
                .and_then(JsonValue::as_u64),
            Some(511)
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.workloads[0].hold.p99 = 1023;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn render_mentions_every_workload_and_split() {
        let text = sample().render();
        assert!(text.contains("sunflow"), "{text}");
        assert!(text.contains("sigma"), "{text}");
        assert!(text.contains("paper split reproduced"), "{text}");
    }

    #[test]
    fn missing_fit_serializes_as_unclassified() {
        let mut r = sample();
        r.workloads[0].fit = None;
        r.workloads[0].class = None;
        let text = r.to_json_string();
        let v = JsonValue::parse(text.trim_end()).expect("valid json");
        let w = &v.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            w.get("class").and_then(JsonValue::as_str),
            Some("unclassified")
        );
        assert!(!r.all_match_paper());
        assert!(r.render().contains('-'));
    }
}
