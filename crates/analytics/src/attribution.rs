//! Per-run time attribution and lock-latency percentiles.
//!
//! Aggregates the scheduler's per-thread [`StateTimes`] accounting into
//! the paper's mutator-vs-GC and lock-wait breakdowns, and summarizes
//! the lock table's hold/wait histograms as p50/p95/p99 percentiles —
//! all from data every run already records, no tracing required.

use scalesim_core::RunReport;
use scalesim_metrics::LogHistogram;

/// Where a run's thread-time went, in nanoseconds summed over all
/// mutator threads.
///
/// The six scheduler states collapse to five reported bins:
/// `blocked_starved` and `blocked_sleep` merge into `condition_wait_ns`
/// (both are "parked until someone signals work/time", the monitor
/// `wait()` analog), while GC stop-the-world pauses — which subsume
/// safepoint time in this simulator — stay their own bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeProfile {
    /// Mutator threads in the run.
    pub threads: usize,
    /// On-core execution time (the paper's mutator time).
    pub running_ns: u64,
    /// Runnable but waiting for a core (CPU starvation).
    pub runnable_wait_ns: u64,
    /// Blocked on contended monitors (lock wait).
    pub lock_blocked_ns: u64,
    /// Parked waiting for work or in voluntary sleeps.
    pub condition_wait_ns: u64,
    /// Frozen by stop-the-world GC (includes safepoint ramp-down).
    pub gc_paused_ns: u64,
    /// End-to-end wall time of the run.
    pub wall_ns: u64,
    /// Wall time minus GC pauses (the paper's mutator wall).
    pub mutator_wall_ns: u64,
    /// Sum of stop-the-world pauses (the paper's GC time).
    pub gc_wall_ns: u64,
}

impl TimeProfile {
    /// Builds the profile from one run's report.
    #[must_use]
    pub fn from_report(report: &RunReport) -> TimeProfile {
        let mut p = TimeProfile {
            threads: report.threads,
            wall_ns: report.wall_time.as_nanos(),
            mutator_wall_ns: report.mutator_wall().as_nanos(),
            gc_wall_ns: report.gc_time.as_nanos(),
            ..TimeProfile::default()
        };
        for t in &report.per_thread {
            p.running_ns += t.times.running.as_nanos();
            p.runnable_wait_ns += t.times.runnable_wait.as_nanos();
            p.lock_blocked_ns += t.times.blocked_monitor.as_nanos();
            p.condition_wait_ns +=
                t.times.blocked_starved.as_nanos() + t.times.blocked_sleep.as_nanos();
            p.gc_paused_ns += t.times.gc_paused.as_nanos();
        }
        p
    }

    /// Total accounted thread-time (sum of all five bins).
    #[must_use]
    pub fn accounted_ns(&self) -> u64 {
        self.running_ns
            + self.runnable_wait_ns
            + self.lock_blocked_ns
            + self.condition_wait_ns
            + self.gc_paused_ns
    }

    /// GC share of wall time, in `[0, 1]`.
    #[must_use]
    pub fn gc_share(&self) -> f64 {
        share(self.gc_wall_ns, self.wall_ns)
    }

    /// Lock-blocked share of accounted thread-time, in `[0, 1]`.
    #[must_use]
    pub fn lock_share(&self) -> f64 {
        share(self.lock_blocked_ns, self.accounted_ns())
    }
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// p50/p95/p99/p99.9 summary of a log-bucketed histogram (nanoseconds).
///
/// Quantiles are bucket upper bounds (`2^(i+1) − 1`), the resolution
/// the histogram actually stores; all zero when the histogram is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the tail that dominates a server workload's
    /// user-visible latency.
    pub p999: u64,
}

impl Percentiles {
    /// Summarizes one histogram.
    #[must_use]
    pub fn from_histogram(h: &LogHistogram) -> Percentiles {
        Percentiles {
            count: h.count(),
            p50: h.quantile(0.50).unwrap_or(0),
            p95: h.quantile(0.95).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
            p999: h.quantile(0.999).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_empty_histogram_are_zero() {
        let p = Percentiles::from_histogram(&LogHistogram::new());
        assert_eq!(p, Percentiles::default());
    }

    #[test]
    fn percentiles_are_monotone_bucket_bounds() {
        let mut h = LogHistogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record_n(v, 20);
        }
        let p = Percentiles::from_histogram(&h);
        assert_eq!(p.count, 100);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.p999, "{p:?}");
        assert!(p.p999 >= 100_000, "{p:?}");
    }

    #[test]
    fn shares_handle_zero_denominators() {
        let p = TimeProfile::default();
        assert_eq!(p.gc_share(), 0.0);
        assert_eq!(p.lock_share(), 0.0);
        assert_eq!(p.accounted_ns(), 0);
    }
}
