//! Least-squares fitting of Gunther's Universal Scalability Law.
//!
//! The USL models throughput at concurrency `n` as
//!
//! ```text
//! X(n) = λ·n / (1 + σ·(n−1) + κ·n·(n−1))
//! ```
//!
//! where λ is the single-thread throughput, σ the serial (contention)
//! fraction and κ the coherency (crosstalk) cost. The law is linear in
//! disguise: dividing through gives `n/X(n) = a + b·(n−1) + c·n·(n−1)`
//! with `a = 1/λ`, `b = σ/λ`, `c = κ/λ`, so an ordinary least-squares
//! fit over the basis `[1, (n−1), n·(n−1)]` recovers all three
//! parameters without any iterative solver — std-only, deterministic.

/// Fitted-efficiency fraction at the largest thread count above which a
/// curve is classified scalable.
///
/// A perfectly scalable app retains efficiency 1.0 (speedup equals the
/// thread ratio); a serialized app tends to `min_n/max_n`. The 0.25 cut
/// reproduces the experiments crate's absolute speedup threshold (3×) on
/// the paper's 4→48 sweep, but stays meaningful for other grids.
pub const SCALABLE_EFFICIENCY_THRESHOLD: f64 = 0.25;

/// The three USL parameters plus goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UslFit {
    /// Ideal per-thread throughput (the `λ` coefficient).
    pub lambda: f64,
    /// Serial / contention fraction (`σ`), clamped to `[0, ∞)`.
    pub sigma: f64,
    /// Coherency / crosstalk cost (`κ`), clamped to `[0, ∞)`.
    pub kappa: f64,
    /// Root-mean-square *relative* residual of the (clamped) fit over
    /// the input points: 0 means the curve passes through every point.
    pub rms_residual: f64,
}

/// Automatic classification of a fitted curve over a given sweep range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UslClass {
    /// Fitted efficiency at the top of the sweep stays above
    /// [`SCALABLE_EFFICIENCY_THRESHOLD`].
    Scalable,
    /// Not scalable, but throughput has no predicted maximum inside the
    /// sweep: σ dominates (Amdahl-style saturation).
    ContentionLimited,
    /// Not scalable and the predicted peak `n*` lies inside the sweep:
    /// κ dominates and adding threads makes throughput *fall*.
    CoherencyCollapsed,
}

impl UslClass {
    /// Stable lowercase label used in JSON artifacts and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            UslClass::Scalable => "scalable",
            UslClass::ContentionLimited => "contention-limited",
            UslClass::CoherencyCollapsed => "coherency-collapsed",
        }
    }

    /// Whether this class agrees with the paper's coarse two-way label
    /// (`"scalable"` / `"non-scalable"`).
    #[must_use]
    pub fn matches_expected(self, expected: &str) -> bool {
        match self {
            UslClass::Scalable => expected == "scalable",
            _ => expected == "non-scalable",
        }
    }
}

impl UslFit {
    /// Predicted throughput at concurrency `n`.
    #[must_use]
    pub fn predict(&self, n: f64) -> f64 {
        let denom = 1.0 + self.sigma * (n - 1.0) + self.kappa * n * (n - 1.0);
        if denom <= 0.0 {
            0.0
        } else {
            self.lambda * n / denom
        }
    }

    /// Concurrency at which predicted throughput peaks:
    /// `n* = sqrt((1−σ)/κ)`. Infinite when κ = 0 (no coherency cost ⇒
    /// throughput only saturates, never falls); 1 when σ ≥ 1.
    #[must_use]
    pub fn peak_concurrency(&self) -> f64 {
        if self.kappa <= 0.0 {
            f64::INFINITY
        } else if self.sigma >= 1.0 {
            1.0
        } else {
            ((1.0 - self.sigma) / self.kappa).sqrt()
        }
    }

    /// Predicted collapse point: the concurrency past the peak where
    /// throughput falls back to its single-thread level, `(1−σ)/κ`
    /// (the closed-form root of `X(n) = X(1)` for `n > 1`). Infinite
    /// when κ = 0.
    #[must_use]
    pub fn collapse_point(&self) -> f64 {
        if self.kappa <= 0.0 {
            f64::INFINITY
        } else if self.sigma >= 1.0 {
            1.0
        } else {
            (1.0 - self.sigma) / self.kappa
        }
    }

    /// Classifies the fitted curve over the sweep `[min_n, max_n]`.
    #[must_use]
    pub fn classify(&self, min_n: f64, max_n: f64) -> UslClass {
        let base = self.predict(min_n);
        let ideal = if min_n > 0.0 { max_n / min_n } else { 1.0 };
        let fitted = if base > 0.0 {
            self.predict(max_n) / base
        } else {
            0.0
        };
        if fitted >= SCALABLE_EFFICIENCY_THRESHOLD * ideal {
            UslClass::Scalable
        } else if self.peak_concurrency() <= max_n {
            UslClass::CoherencyCollapsed
        } else {
            UslClass::ContentionLimited
        }
    }
}

/// Fits the USL to `(threads, throughput)` points by linear least
/// squares over the transformed curve `n/X(n)`.
///
/// Points with non-positive thread count or throughput are ignored
/// (quarantined sweep cells produce zero throughput). Fitting degrades
/// gracefully with the number of *distinct* thread counts: three or
/// more fit all of (λ, σ, κ); two fix κ = 0; one fixes σ = κ = 0.
/// Returns `None` when no usable point remains or the system is
/// singular / yields a non-positive λ.
#[must_use]
pub fn fit_usl(points: &[(f64, f64)]) -> Option<UslFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(n, x)| n >= 1.0 && x > 0.0 && n.is_finite() && x.is_finite())
        .collect();
    if usable.is_empty() {
        return None;
    }
    let mut distinct: Vec<f64> = usable.iter().map(|&(n, _)| n).collect();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    distinct.dedup();
    let k = distinct.len().min(3);

    // Normal equations over basis [1, (n−1), n·(n−1)] for y = n/X.
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for &(n, x) in &usable {
        let phi = [1.0, n - 1.0, n * (n - 1.0)];
        let y = n / x;
        for i in 0..k {
            for j in 0..k {
                ata[i][j] += phi[i] * phi[j];
            }
            aty[i] += phi[i] * y;
        }
    }
    let w = solve(&mut ata, &mut aty, k)?;
    let a = w[0];
    if !(a.is_finite() && a > 0.0) {
        return None;
    }
    let mut fit = UslFit {
        lambda: 1.0 / a,
        sigma: (w[1] / a).max(0.0),
        kappa: (w[2] / a).max(0.0),
        rms_residual: 0.0,
    };
    // Residuals are recomputed after clamping so they price the model we
    // actually report, not the unconstrained solution.
    let mut sq = 0.0;
    for &(n, x) in &usable {
        let rel = (fit.predict(n) - x) / x;
        sq += rel * rel;
    }
    fit.rms_residual = (sq / usable.len() as f64).sqrt();
    Some(fit)
}

/// Solves the leading `k×k` block of `A·w = b` by Gaussian elimination
/// with partial pivoting; trailing unknowns are fixed at zero.
#[allow(clippy::needless_range_loop)] // textbook elimination reads clearest indexed
fn solve(a: &mut [[f64; 3]; 3], b: &mut [f64; 3], k: usize) -> Option<[f64; 3]> {
    for col in 0..k {
        let pivot = (col..k).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..k {
            let f = a[row][col] / a[col][col];
            for c in col..k {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = [0.0f64; 3];
    for col in (0..k).rev() {
        let mut acc = b[col];
        for c in col + 1..k {
            acc -= a[col][c] * w[c];
        }
        w[col] = acc / a[col][col];
    }
    if w.iter().all(|v| v.is_finite()) {
        Some(w)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(lambda: f64, sigma: f64, kappa: f64, ns: &[f64]) -> Vec<(f64, f64)> {
        let truth = UslFit {
            lambda,
            sigma,
            kappa,
            rms_residual: 0.0,
        };
        ns.iter().map(|&n| (n, truth.predict(n))).collect()
    }

    #[test]
    fn recovers_exact_parameters_from_clean_curve() {
        let pts = synth(1000.0, 0.08, 0.0005, &[1.0, 4.0, 8.0, 16.0, 32.0, 48.0]);
        let fit = fit_usl(&pts).expect("fit");
        assert!((fit.lambda - 1000.0).abs() < 1e-6, "{fit:?}");
        assert!((fit.sigma - 0.08).abs() < 1e-9, "{fit:?}");
        assert!((fit.kappa - 0.0005).abs() < 1e-9, "{fit:?}");
        assert!(fit.rms_residual < 1e-9, "{fit:?}");
    }

    #[test]
    fn peak_and_collapse_closed_forms() {
        let fit = UslFit {
            lambda: 100.0,
            sigma: 0.1,
            kappa: 0.01,
            rms_residual: 0.0,
        };
        // n* = sqrt(0.9/0.01) ≈ 9.487; collapse = 0.9/0.01 = 90.
        assert!((fit.peak_concurrency() - 90.0f64.sqrt()).abs() < 1e-12);
        assert!((fit.collapse_point() - 90.0).abs() < 1e-12);
        // Throughput at the collapse point is back to X(1) = λ.
        assert!((fit.predict(90.0) - fit.predict(1.0)).abs() < 1e-9);
        // κ = 0 ⇒ no peak, no collapse.
        let amdahl = UslFit { kappa: 0.0, ..fit };
        assert!(amdahl.peak_concurrency().is_infinite());
        assert!(amdahl.collapse_point().is_infinite());
    }

    #[test]
    fn classification_covers_all_three_regimes() {
        let scalable =
            fit_usl(&synth(100.0, 0.01, 0.00001, &[4.0, 8.0, 16.0, 32.0, 48.0])).expect("fit");
        assert_eq!(scalable.classify(4.0, 48.0), UslClass::Scalable);

        let contended =
            fit_usl(&synth(100.0, 0.6, 0.0, &[4.0, 8.0, 16.0, 32.0, 48.0])).expect("fit");
        assert_eq!(contended.classify(4.0, 48.0), UslClass::ContentionLimited);

        let collapsed =
            fit_usl(&synth(100.0, 0.2, 0.01, &[4.0, 8.0, 16.0, 32.0, 48.0])).expect("fit");
        assert_eq!(collapsed.classify(4.0, 48.0), UslClass::CoherencyCollapsed);
    }

    #[test]
    fn degenerate_point_counts_degrade_gracefully() {
        // One distinct n: pure λ fit.
        let one = fit_usl(&[(8.0, 400.0)]).expect("fit");
        assert!((one.predict(8.0) - 400.0).abs() < 1e-9);
        assert_eq!((one.sigma, one.kappa), (0.0, 0.0));
        // Two distinct n: κ pinned to zero.
        let two = fit_usl(&synth(100.0, 0.3, 0.0, &[4.0, 16.0])).expect("fit");
        assert!((two.sigma - 0.3).abs() < 1e-9, "{two:?}");
        assert_eq!(two.kappa, 0.0);
        // Nothing usable.
        assert!(fit_usl(&[]).is_none());
        assert!(fit_usl(&[(4.0, 0.0)]).is_none());
    }

    #[test]
    fn negative_coefficients_clamp_and_reprice_residual() {
        // Superlinear data would drive σ negative; the clamp keeps the
        // reported model physical and the residual honest about it.
        let pts = [(1.0, 100.0), (2.0, 230.0), (4.0, 520.0)];
        let fit = fit_usl(&pts).expect("fit");
        assert!(fit.sigma >= 0.0 && fit.kappa >= 0.0);
        assert!(fit.rms_residual > 0.0);
    }

    #[test]
    fn ignores_quarantined_zero_throughput_cells() {
        let mut pts = synth(1000.0, 0.05, 0.0001, &[4.0, 8.0, 16.0, 32.0]);
        pts.push((48.0, 0.0)); // quarantined cell
        let fit = fit_usl(&pts).expect("fit");
        assert!((fit.sigma - 0.05).abs() < 1e-9, "{fit:?}");
    }

    #[test]
    fn class_labels_and_expected_matching() {
        assert_eq!(UslClass::Scalable.label(), "scalable");
        assert_eq!(UslClass::ContentionLimited.label(), "contention-limited");
        assert_eq!(UslClass::CoherencyCollapsed.label(), "coherency-collapsed");
        assert!(UslClass::Scalable.matches_expected("scalable"));
        assert!(!UslClass::Scalable.matches_expected("non-scalable"));
        assert!(UslClass::ContentionLimited.matches_expected("non-scalable"));
        assert!(UslClass::CoherencyCollapsed.matches_expected("non-scalable"));
    }
}
