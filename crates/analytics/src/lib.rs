//! Offline scalability analytics over completed sweeps.
//!
//! This crate is the answer layer on top of five PRs of recorded
//! telemetry: it takes the per-run [`RunReport`]s a sweep already
//! produced (live, from a resumed checkpoint, or from a merged
//! campaign — all Debug-identical) and derives *why* each workload
//! scales or fails to, with no re-simulation and no host-time inputs:
//!
//! 1. **USL fitting** ([`usl`]) — a std-only least-squares fit of each
//!    throughput-vs-threads curve to Gunther's Universal Scalability
//!    Law, yielding the contention coefficient σ, the coherency
//!    coefficient κ, the peak concurrency `n*`, the predicted collapse
//!    point, and an automatic scalable / contention-limited /
//!    coherency-collapsed classification.
//! 2. **Time attribution** ([`attribution`]) — per-run aggregation of
//!    the scheduler's per-thread state accounting into the paper's
//!    mutator-vs-GC and lock-wait breakdowns, plus p50/p95/p99
//!    monitor-hold and lock-wait percentiles from the lock table's
//!    histograms.
//! 3. **The artifact** ([`report`]) — a deterministic, fingerprinted
//!    `analytics.json` plus a rendered text report.
//!
//! The experiments crate assembles the inputs and owns the file I/O;
//! this crate is pure computation, usable on any collection of reports.
//!
//! [`RunReport`]: scalesim_core::RunReport

mod attribution;
mod report;
mod usl;

pub use attribution::{Percentiles, TimeProfile};
pub use report::{AnalyticsReport, WorkloadAnalysis, ANALYTICS_VERSION};
pub use usl::{fit_usl, UslClass, UslFit, SCALABLE_EFFICIENCY_THRESHOLD};
