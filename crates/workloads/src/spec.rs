//! Application specification and the work-item generator.
//!
//! Each synthetic benchmark is a parameter set ([`AppSpec`]) over one
//! generator: object demography (temporaries with alloc-to-use gaps,
//! per-item state, carried results, permanent data), lock discipline
//! (critical-section classes with hold times), and a work-distribution
//! policy. The six DaCapo analogs in [`crate::apps`] are instances.

use rand::rngs::StdRng;
use rand::Rng;
use scalesim_simkit::SimDuration;

use crate::item::{DeathPoint, LockClass, LockClassId, Step, WorkItem};

/// The paper's §II-C classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalabilityClass {
    /// Execution time drops as threads/cores grow (sunflow, lusearch,
    /// xalan).
    Scalable,
    /// Execution time barely improves (h2, eclipse, jython).
    NonScalable,
}

impl ScalabilityClass {
    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScalabilityClass::Scalable => "scalable",
            ScalabilityClass::NonScalable => "non-scalable",
        }
    }
}

/// Per-batch result merging under a shared lock (guided queue mode).
///
/// Real queue-parallel applications synchronize at batch boundaries —
/// xalan merges serialized output, sunflow composites image tiles,
/// lusearch aggregates hit lists. Because batch count scales with the
/// worker count under guided self-scheduling, this lock's traffic grows
/// with threads while total application work stays fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMerge {
    /// Lock class acquired at each batch boundary.
    pub class: LockClassId,
    /// Hold-time range in nanoseconds.
    pub held_ns: (u64, u64),
}

/// How work items reach worker threads.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Guided self-scheduling from a shared queue: a worker grabs a batch
    /// of `max(1, remaining / (factor * workers))` items under the queue
    /// lock. Finer batches at higher thread counts make queue-lock
    /// traffic grow roughly linearly with workers — the mechanism behind
    /// Figure 1a's rising curves for scalable applications.
    GuidedQueue {
        /// Batch granularity factor (larger ⇒ smaller batches, more
        /// queue traffic).
        factor: f64,
        /// Lock class guarding the queue.
        lock: LockClassId,
        /// Time the queue lock is held per batch dispatch.
        dispatch: SimDuration,
        /// Optional per-batch merge critical section.
        merge: Option<BatchMerge>,
    },
    /// Static assignment: worker `i` receives `weights[i]` of the items
    /// (normalized over the effective workers), with no dispatch lock.
    /// Skewed weights model jython/eclipse, where "three to four threads
    /// do most of the work" regardless of the configured count.
    StaticSkewed {
        /// Relative per-worker weights; workers beyond the list get 0.
        weights: Vec<f64>,
    },
}

impl Distribution {
    /// Per-worker item shares for `workers` effective workers
    /// (normalized, summing to 1 unless all weights are zero).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn shares(&self, workers: usize) -> Vec<f64> {
        assert!(workers >= 1, "need at least one worker");
        match self {
            Distribution::GuidedQueue { .. } => vec![1.0 / workers as f64; workers],
            Distribution::StaticSkewed { weights } => {
                let mut w: Vec<f64> = (0..workers)
                    .map(|i| weights.get(i).copied().unwrap_or(0.0))
                    .collect();
                let sum: f64 = w.iter().sum();
                if sum > 0.0 {
                    for v in &mut w {
                        *v /= sum;
                    }
                }
                w
            }
        }
    }
}

/// A class of temporary objects: allocated, used after a short compute
/// gap, then dead. The gap is the lever that controls how far the
/// allocation clock (driven by *all* threads) advances before death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempClass {
    /// Temporaries of this class per item.
    pub count: u32,
    /// Object size range in bytes (inclusive).
    pub bytes: (u64, u64),
    /// Alloc-to-last-use compute gap range in nanoseconds (inclusive).
    pub gap_ns: (u64, u64),
}

/// Objects that live to the end of their item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemStateSpec {
    /// Objects per item.
    pub count: u32,
    /// Size range in bytes.
    pub bytes: (u64, u64),
}

/// Objects carried across items on the same thread (caches, partial
/// results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarrySpec {
    /// Size range in bytes.
    pub bytes: (u64, u64),
    /// Items after which the object dies.
    pub items: u32,
    /// Probability an item allocates one.
    pub probability: f64,
}

/// Objects that live until VM shutdown (metadata, caches that never
/// drain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermanentSpec {
    /// Size in bytes.
    pub bytes: u64,
    /// Probability an item allocates one.
    pub probability: f64,
}

/// Application critical sections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalSpec {
    /// Lock class acquired.
    pub class: LockClassId,
    /// Hold-time range in nanoseconds.
    pub held_ns: (u64, u64),
    /// Probability an item contains this critical section.
    pub probability: f64,
}

/// Full parameter set for one synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Benchmark name (DaCapo analog).
    pub name: String,
    /// Scalable or not, per the paper's classification.
    pub class: ScalabilityClass,
    /// Minimum heap the app needs; the harness sizes the real heap at 3×.
    pub min_heap_bytes: u64,
    /// Total work items (fixed regardless of thread count — the paper's
    /// §II-C: "about the same number of objects ... even as we increase
    /// the number of threads").
    pub total_items: u64,
    /// Cap on threads that actually receive work (`None` = all).
    pub effective_cap: Option<usize>,
    /// Work-distribution policy.
    pub distribution: Distribution,
    /// Lock classes (indexed by [`LockClassId`]).
    pub lock_classes: Vec<LockClass>,
    /// Target total compute per item, nanoseconds (range).
    pub compute_ns: (u64, u64),
    /// Temporary-object classes.
    pub temps: Vec<TempClass>,
    /// Per-item state objects.
    pub item_state: ItemStateSpec,
    /// Carried objects.
    pub carries: Vec<CarrySpec>,
    /// Permanent objects.
    pub permanent: Option<PermanentSpec>,
    /// Application critical sections.
    pub criticals: Vec<CriticalSpec>,
}

impl AppSpec {
    /// Generates one work item.
    ///
    /// The layout is: per-item state and carried/permanent allocations up
    /// front, then temporaries interleaved with their use gaps and the
    /// critical sections, then padding compute to reach the item's target
    /// CPU time.
    #[must_use]
    pub fn make_item(&self, rng: &mut StdRng) -> WorkItem {
        let mut steps = Vec::new();
        let target = SimDuration::from_nanos(range_sample(rng, self.compute_ns));
        let mut used = SimDuration::ZERO;

        for _ in 0..self.item_state.count {
            steps.push(Step::Alloc {
                bytes: range_sample(rng, self.item_state.bytes),
                death: DeathPoint::ItemEnd,
            });
        }
        for carry in &self.carries {
            if rng.gen_bool(carry.probability) {
                steps.push(Step::Alloc {
                    bytes: range_sample(rng, carry.bytes),
                    death: DeathPoint::CarryItems(carry.items),
                });
            }
        }
        if let Some(perm) = self.permanent {
            if rng.gen_bool(perm.probability) {
                steps.push(Step::Alloc {
                    bytes: perm.bytes,
                    death: DeathPoint::Permanent,
                });
            }
        }

        // Decide this item's critical sections up front so they can be
        // interleaved among the temporaries (as lock operations are in
        // real code) rather than clustered at the end — under contention
        // a monitor wait then stretches in-flight temporaries' lifespans.
        let mut criticals: Vec<Step> = Vec::new();
        for crit in &self.criticals {
            if rng.gen_bool(crit.probability) {
                criticals.push(Step::Critical {
                    class: crit.class,
                    held: SimDuration::from_nanos(range_sample(rng, crit.held_ns)),
                });
            }
        }
        let total_temps: u32 = self.temps.iter().map(|c| c.count).sum();
        let crit_stride = if criticals.is_empty() {
            u32::MAX
        } else {
            (total_temps / (criticals.len() as u32 + 1)).max(1)
        };

        // Temporaries with explicit use gaps, criticals interleaved.
        let mut criticals = criticals.into_iter();
        let mut slot: u8 = 0;
        let mut since_crit = 0u32;
        for class in &self.temps {
            for _ in 0..class.count {
                let gap = SimDuration::from_nanos(range_sample(rng, class.gap_ns));
                steps.push(Step::Alloc {
                    bytes: range_sample(rng, class.bytes),
                    death: DeathPoint::Slot(slot),
                });
                steps.push(Step::Compute(gap));
                steps.push(Step::KillSlot(slot));
                used += gap;
                slot = slot
                    .checked_add(1)
                    .expect("more than 256 temporaries per item");
                since_crit += 1;
                if since_crit >= crit_stride {
                    since_crit = 0;
                    if let Some(crit) = criticals.next() {
                        steps.push(crit);
                    }
                }
            }
        }
        steps.extend(criticals);

        if used < target {
            steps.push(Step::Compute(target - used));
        }
        WorkItem::new(steps)
    }

    /// Threads that actually receive work when `requested` are configured.
    ///
    /// # Panics
    ///
    /// Panics if `requested` is zero.
    #[must_use]
    pub fn effective_workers(&self, requested: usize) -> usize {
        assert!(requested >= 1, "need at least one thread");
        match self.effective_cap {
            Some(cap) => requested.min(cap),
            None => requested,
        }
    }

    /// Returns a copy with `total_items` scaled by `factor` (≥ 1 item),
    /// for fast tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> AppSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut spec = self.clone();
        spec.total_items = ((self.total_items as f64 * factor) as u64).max(1);
        spec
    }
}

fn range_sample(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    assert!(lo <= hi, "empty range {lo}..={hi}");
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn test_spec() -> AppSpec {
        AppSpec {
            name: "test".into(),
            class: ScalabilityClass::Scalable,
            min_heap_bytes: 1 << 20,
            total_items: 100,
            effective_cap: None,
            distribution: Distribution::GuidedQueue {
                factor: 2.0,
                lock: LockClassId(0),
                dispatch: SimDuration::from_nanos(1000),
                merge: None,
            },
            lock_classes: vec![LockClass::new("workqueue"), LockClass::new("cache")],
            compute_ns: (50_000, 60_000),
            temps: vec![TempClass {
                count: 3,
                bytes: (64, 128),
                gap_ns: (100, 500),
            }],
            item_state: ItemStateSpec {
                count: 2,
                bytes: (256, 512),
            },
            carries: vec![CarrySpec {
                bytes: (512, 512),
                items: 4,
                probability: 1.0,
            }],
            permanent: Some(PermanentSpec {
                bytes: 2048,
                probability: 1.0,
            }),
            criticals: vec![CriticalSpec {
                class: LockClassId(1),
                held_ns: (500, 900),
                probability: 1.0,
            }],
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn generated_item_has_expected_structure() {
        let spec = test_spec();
        let item = spec.make_item(&mut rng());
        // 2 item-state + 1 carry + 1 permanent + 3 temps = 7 allocs
        assert_eq!(item.alloc_count(), 7);
        assert_eq!(item.critical_count(), 1);
        // compute reaches the target
        let cpu = item.cpu_time().as_nanos();
        assert!(cpu >= 50_000, "cpu {cpu}");
        assert!(cpu <= 61_000, "cpu {cpu}");
    }

    #[test]
    fn items_are_deterministic_per_seed() {
        let spec = test_spec();
        let a = spec.make_item(&mut rng());
        let b = spec.make_item(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_gate_optional_allocs() {
        let mut spec = test_spec();
        spec.carries[0].probability = 0.0;
        spec.permanent = Some(PermanentSpec {
            bytes: 1,
            probability: 0.0,
        });
        spec.criticals[0].probability = 0.0;
        let item = spec.make_item(&mut rng());
        assert_eq!(item.alloc_count(), 5); // 2 state + 3 temps
        assert_eq!(item.critical_count(), 0);
    }

    #[test]
    fn guided_shares_are_uniform() {
        let spec = test_spec();
        let shares = spec.distribution.shares(4);
        assert_eq!(shares, vec![0.25; 4]);
    }

    #[test]
    fn skewed_shares_normalize_and_pad() {
        let dist = Distribution::StaticSkewed {
            weights: vec![3.0, 1.0],
        };
        let shares = dist.shares(4);
        assert_eq!(shares, vec![0.75, 0.25, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_shares_panics() {
        let _ = Distribution::StaticSkewed { weights: vec![] }.shares(0);
    }

    #[test]
    fn effective_workers_cap() {
        let mut spec = test_spec();
        assert_eq!(spec.effective_workers(16), 16);
        spec.effective_cap = Some(4);
        assert_eq!(spec.effective_workers(16), 4);
        assert_eq!(spec.effective_workers(2), 2);
    }

    #[test]
    fn scaled_changes_items_only() {
        let spec = test_spec();
        let half = spec.scaled(0.5);
        assert_eq!(half.total_items, 50);
        assert_eq!(half.name, spec.name);
        let tiny = spec.scaled(1e-9);
        assert_eq!(tiny.total_items, 1, "floor at one item");
    }

    #[test]
    fn class_labels() {
        assert_eq!(ScalabilityClass::Scalable.label(), "scalable");
        assert_eq!(ScalabilityClass::NonScalable.label(), "non-scalable");
    }
}
