//! Work items: the unit of application work a mutator thread executes.
//!
//! A [`WorkItem`] is an interpretable step stream — compute bursts, object
//! allocations with explicit death points, and critical sections. The
//! runtime executes steps in order on the simulated CPU; the *shape* of
//! the stream (how far an allocation sits from its death, how long locks
//! are held) is what produces the paper's lock and lifespan observables.

use std::fmt;

use scalesim_simkit::SimDuration;

/// Index into an application's lock-class list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockClassId(pub usize);

/// A class of application locks (e.g. `"workqueue"`, `"db-latch"`).
///
/// Each class materializes as `instances` monitor(s) in the VM; threads
/// touching the class pick an instance (instance 0 unless sharded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockClass {
    /// Human-readable class name (appears in the lock profiler report).
    pub name: String,
    /// Number of monitor instances backing the class.
    pub instances: usize,
}

impl LockClass {
    /// Creates a lock class with one instance.
    #[must_use]
    pub fn new(name: &str) -> Self {
        LockClass {
            name: name.to_owned(),
            instances: 1,
        }
    }

    /// Creates a sharded lock class.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    #[must_use]
    pub fn sharded(name: &str, instances: usize) -> Self {
        assert!(instances >= 1, "lock class needs at least one instance");
        LockClass {
            name: name.to_owned(),
            instances,
        }
    }
}

/// When an allocated object dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathPoint {
    /// Dies when the matching [`Step::KillSlot`] executes within the same
    /// item (a temporary).
    Slot(u8),
    /// Dies when the item's last step completes (per-item state).
    ItemEnd,
    /// Dies after the owning thread completes this many further items
    /// (caches, carried results).
    CarryItems(u32),
    /// Lives until VM shutdown (right-censored in the trace).
    Permanent,
}

/// One step of a work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execute on-CPU for the duration.
    Compute(SimDuration),
    /// Allocate `bytes` with the given death point.
    Alloc {
        /// Object size in bytes.
        bytes: u64,
        /// When the object dies.
        death: DeathPoint,
    },
    /// Last use of the slot allocated earlier in this item: the object
    /// dies here.
    KillSlot(u8),
    /// Acquire a lock of the class, stay on-CPU for `held`, release.
    Critical {
        /// Which lock class to acquire.
        class: LockClassId,
        /// How long the lock is held (critical-section work).
        held: SimDuration,
    },
}

/// A validated sequence of steps.
///
/// # Examples
///
/// ```
/// use scalesim_workloads::{DeathPoint, Step, WorkItem};
/// use scalesim_simkit::SimDuration;
///
/// let item = WorkItem::new(vec![
///     Step::Alloc { bytes: 64, death: DeathPoint::Slot(0) },
///     Step::Compute(SimDuration::from_nanos(200)),
///     Step::KillSlot(0),
/// ]);
/// assert_eq!(item.alloc_bytes(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkItem {
    steps: Vec<Step>,
}

impl WorkItem {
    /// Creates an item after validating slot discipline.
    ///
    /// # Panics
    ///
    /// Panics if a `KillSlot` precedes its `Alloc`, targets a never-
    /// allocated slot, a slot is allocated or killed twice, or a slot
    /// allocation is never killed (use [`DeathPoint::ItemEnd`] for that).
    #[must_use]
    pub fn new(steps: Vec<Step>) -> Self {
        let mut allocated = [false; 256];
        let mut killed = [false; 256];
        for step in &steps {
            match *step {
                Step::Alloc {
                    death: DeathPoint::Slot(s),
                    ..
                } => {
                    assert!(!allocated[s as usize], "slot {s} allocated twice");
                    allocated[s as usize] = true;
                }
                Step::KillSlot(s) => {
                    assert!(allocated[s as usize], "KillSlot({s}) without a prior Alloc");
                    assert!(!killed[s as usize], "slot {s} killed twice");
                    killed[s as usize] = true;
                }
                _ => {}
            }
        }
        for s in 0..256 {
            assert!(
                allocated[s] == killed[s],
                "slot {s} allocated but never killed (use DeathPoint::ItemEnd instead)"
            );
        }
        WorkItem { steps }
    }

    /// The steps in execution order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the item has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total on-CPU time of the item (compute + critical sections),
    /// ignoring scheduling and lock waits.
    #[must_use]
    pub fn cpu_time(&self) -> SimDuration {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Compute(d) => *d,
                Step::Critical { held, .. } => *held,
                _ => SimDuration::ZERO,
            })
            .sum()
    }

    /// Total bytes allocated by the item.
    #[must_use]
    pub fn alloc_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Alloc { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of objects the item allocates.
    #[must_use]
    pub fn alloc_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Alloc { .. }))
            .count()
    }

    /// Number of critical sections in the item.
    #[must_use]
    pub fn critical_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Critical { .. }))
            .count()
    }
}

impl fmt::Display for WorkItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WorkItem({} steps, {} cpu, {} B, {} locks)",
            self.len(),
            self.cpu_time(),
            self.alloc_bytes(),
            self.critical_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn aggregates() {
        let item = WorkItem::new(vec![
            Step::Alloc {
                bytes: 100,
                death: DeathPoint::Slot(0),
            },
            Step::Compute(ns(500)),
            Step::KillSlot(0),
            Step::Critical {
                class: LockClassId(0),
                held: ns(200),
            },
            Step::Alloc {
                bytes: 50,
                death: DeathPoint::ItemEnd,
            },
        ]);
        assert_eq!(item.len(), 5);
        assert_eq!(item.cpu_time(), ns(700));
        assert_eq!(item.alloc_bytes(), 150);
        assert_eq!(item.alloc_count(), 2);
        assert_eq!(item.critical_count(), 1);
    }

    #[test]
    #[should_panic(expected = "without a prior Alloc")]
    fn kill_before_alloc_panics() {
        let _ = WorkItem::new(vec![Step::KillSlot(0)]);
    }

    #[test]
    #[should_panic(expected = "never killed")]
    fn unkilled_slot_panics() {
        let _ = WorkItem::new(vec![Step::Alloc {
            bytes: 1,
            death: DeathPoint::Slot(3),
        }]);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_alloc_slot_panics() {
        let _ = WorkItem::new(vec![
            Step::Alloc {
                bytes: 1,
                death: DeathPoint::Slot(0),
            },
            Step::KillSlot(0),
            Step::Alloc {
                bytes: 1,
                death: DeathPoint::Slot(0),
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "killed twice")]
    fn double_kill_panics() {
        let _ = WorkItem::new(vec![
            Step::Alloc {
                bytes: 1,
                death: DeathPoint::Slot(0),
            },
            Step::KillSlot(0),
            Step::KillSlot(0),
        ]);
    }

    #[test]
    fn non_slot_deaths_require_no_kill() {
        let item = WorkItem::new(vec![
            Step::Alloc {
                bytes: 1,
                death: DeathPoint::ItemEnd,
            },
            Step::Alloc {
                bytes: 2,
                death: DeathPoint::CarryItems(3),
            },
            Step::Alloc {
                bytes: 3,
                death: DeathPoint::Permanent,
            },
        ]);
        assert_eq!(item.alloc_count(), 3);
    }

    #[test]
    fn lock_class_constructors() {
        assert_eq!(LockClass::new("q").instances, 1);
        assert_eq!(LockClass::sharded("c", 4).instances, 4);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_shards_panics() {
        let _ = LockClass::sharded("c", 0);
    }

    #[test]
    fn display_mentions_shape() {
        let item = WorkItem::new(vec![Step::Compute(ns(100))]);
        assert!(item.to_string().contains("1 steps"));
    }
}
