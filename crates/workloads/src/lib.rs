//! # scalesim-workloads
//!
//! Synthetic multithreaded application models standing in for the paper's
//! six DaCapo-9.12 benchmarks (§II-C): sunflow, lusearch, xalan (scalable)
//! and h2, eclipse, jython (non-scalable).
//!
//! Each model is a parameter set over one generator — see [`AppSpec`] —
//! capturing the properties the paper's analysis actually depends on:
//!
//! * **work distribution**: uniform via a guided self-scheduling queue
//!   (scalable apps) vs. concentrated in 3–4 threads or serialized on a
//!   coarse lock (non-scalable apps);
//! * **lock discipline**: which lock classes are taken per item and for
//!   how long — the source of Figures 1a/1b;
//! * **object demography**: temporaries with short alloc-to-use gaps,
//!   per-item state, carried results and permanent data — the source of
//!   Figures 1c/1d once the runtime's scheduling stretches those gaps.
//!
//! Models produce [`WorkItem`] step streams; the `scalesim-core` runtime
//! interprets them. Nothing here hard-codes the paper's curves.
//!
//! ```
//! use scalesim_workloads::{xalan, AppModel};
//! use rand::SeedableRng;
//!
//! let app = xalan();
//! assert_eq!(app.effective_workers(48), 48); // scalable: all threads work
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let item = app.make_item(&mut rng);
//! assert!(item.alloc_count() > 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apps;
mod item;
mod server;
mod spec;

use rand::rngs::StdRng;

pub use apps::{
    all_apps, app_by_name, eclipse, h2, jython, lusearch, non_scalable_apps, scalable_apps,
    sunflow, xalan, SyntheticApp,
};
pub use item::{DeathPoint, LockClass, LockClassId, Step, WorkItem};
pub use server::{
    keyed_range, open_poisson_times, poisson_gap_ns, think_ns, ArrivalProcess, Backoff,
    ClientPolicy, LockProfile, RequestClass, ServerPolicy, ServerSpec, SALT_CLASS, SALT_HOLD,
    SALT_JITTER, SALT_SERVICE, SALT_THINK,
};
pub use spec::{
    AppSpec, BatchMerge, CarrySpec, CriticalSpec, Distribution, ItemStateSpec, PermanentSpec,
    ScalabilityClass, TempClass,
};

/// A multithreaded application model the runtime can execute.
///
/// Implemented by [`SyntheticApp`] for the six paper benchmarks; downstream
/// users can implement it to study their own workload shapes.
pub trait AppModel: std::fmt::Debug {
    /// Benchmark name.
    fn name(&self) -> &str;
    /// Scalable or non-scalable, per the paper's classification.
    fn class(&self) -> ScalabilityClass;
    /// Minimum heap requirement; harnesses size the heap at 3× this
    /// (§II-C).
    fn min_heap_bytes(&self) -> u64;
    /// Total work items, independent of thread count.
    fn total_items(&self) -> u64;
    /// How many of `requested` threads actually receive work.
    fn effective_workers(&self, requested: usize) -> usize;
    /// Work-distribution policy.
    fn distribution(&self) -> &Distribution;
    /// Lock classes used by this app's critical sections and queue.
    fn lock_classes(&self) -> &[LockClass];
    /// Generates the next work item from the caller's RNG stream.
    fn make_item(&self, rng: &mut StdRng) -> WorkItem;
}
