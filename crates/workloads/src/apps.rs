//! The six DaCapo-9.12 analogs the paper studies (§II-C).
//!
//! Parameters encode each benchmark's *qualitative* published behaviour —
//! work-distribution shape, lock discipline, object demography — not its
//! bytecode. Scalable apps (sunflow, lusearch, xalan) pull fixed total
//! work from a shared guided-self-scheduling queue, so per-thread work
//! shrinks and queue-lock traffic grows as threads are added. Non-scalable
//! apps either serialize on a coarse lock (h2's database latch, jython's
//! interpreter lock) or concentrate work in 3–4 threads regardless of the
//! configured count (jython, eclipse — §III: "jython mainly uses three to
//! four threads ... even when we set the number of mutator threads to be
//! larger than 16").

use rand::rngs::StdRng;

use scalesim_simkit::SimDuration;

use crate::item::{LockClass, LockClassId, WorkItem};
use crate::spec::{
    AppSpec, BatchMerge, CarrySpec, CriticalSpec, Distribution, ItemStateSpec, PermanentSpec,
    ScalabilityClass, TempClass,
};
use crate::AppModel;

/// A synthetic application: an [`AppSpec`] behind the [`AppModel`] trait.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticApp {
    spec: AppSpec,
}

impl SyntheticApp {
    /// Wraps a spec.
    #[must_use]
    pub fn new(spec: AppSpec) -> Self {
        SyntheticApp { spec }
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Returns a copy with total work scaled by `factor` (for fast tests,
    /// examples and CI-sized experiment runs).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> SyntheticApp {
        SyntheticApp {
            spec: self.spec.scaled(factor),
        }
    }

    /// Returns a copy with lock class `class` backed by `instances`
    /// monitor shards — the classic contention fix evaluated by the
    /// `ext-sharding` extension experiment.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or `instances` is zero.
    #[must_use]
    pub fn with_lock_instances(&self, class: usize, instances: usize) -> SyntheticApp {
        assert!(
            class < self.spec.lock_classes.len(),
            "lock class {class} out of range"
        );
        assert!(instances >= 1, "need at least one lock instance");
        let mut spec = self.spec.clone();
        spec.lock_classes[class] = LockClass::sharded(&spec.lock_classes[class].name, instances);
        SyntheticApp { spec }
    }
}

impl AppModel for SyntheticApp {
    fn name(&self) -> &str {
        &self.spec.name
    }
    fn class(&self) -> ScalabilityClass {
        self.spec.class
    }
    fn min_heap_bytes(&self) -> u64 {
        self.spec.min_heap_bytes
    }
    fn total_items(&self) -> u64 {
        self.spec.total_items
    }
    fn effective_workers(&self, requested: usize) -> usize {
        self.spec.effective_workers(requested)
    }
    fn distribution(&self) -> &Distribution {
        &self.spec.distribution
    }
    fn lock_classes(&self) -> &[LockClass] {
        &self.spec.lock_classes
    }
    fn make_item(&self, rng: &mut StdRng) -> WorkItem {
        self.spec.make_item(rng)
    }
}

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

/// `xalan`: XSLT transformer — scalable. Worker threads pull transform
/// jobs from a shared queue and hit a hot shared DTM cache. The paper's
/// Figure 1d shows its lifespan CDF: >80 % of objects die within 1 KB of
/// allocation at 4 threads, only ~50 % at 48.
#[must_use]
pub fn xalan() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "xalan".into(),
        class: ScalabilityClass::Scalable,
        min_heap_bytes: 8 * MIB,
        total_items: 60_000,
        effective_cap: None,
        distribution: Distribution::GuidedQueue {
            factor: 24.0,
            lock: LockClassId(0),
            dispatch: SimDuration::from_nanos(1_500),
            merge: Some(BatchMerge {
                class: LockClassId(2),
                held_ns: (1_000, 2_500),
            }),
        },
        lock_classes: vec![
            LockClass::new("workqueue"),
            LockClass::new("dtm-cache"),
            LockClass::new("output"),
        ],
        compute_ns: (70_000, 90_000),
        temps: vec![
            // parser/serializer scratch: dies almost immediately
            TempClass {
                count: 7,
                bytes: (64, 512),
                gap_ns: (40, 120),
            },
            // per-template intermediates: die within a couple of microseconds
            TempClass {
                count: 6,
                bytes: (128, 1024),
                gap_ns: (800, 2_000),
            },
        ],
        item_state: ItemStateSpec {
            count: 2,
            bytes: (256, 1024),
        },
        carries: vec![CarrySpec {
            bytes: (512, 2_048),
            items: 64,
            probability: 0.5,
        }],
        permanent: Some(PermanentSpec {
            bytes: 4 * KIB,
            probability: 0.02,
        }),
        criticals: vec![
            CriticalSpec {
                class: LockClassId(1),
                held_ns: (800, 1_500),
                probability: 0.6,
            },
            CriticalSpec {
                class: LockClassId(2),
                held_ns: (500, 1_000),
                probability: 0.3,
            },
        ],
    })
}

/// `lusearch`: text search — scalable. Independent queries from a shared
/// queue; mostly tiny, immediately-dead parser/scorer temporaries.
#[must_use]
pub fn lusearch() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "lusearch".into(),
        class: ScalabilityClass::Scalable,
        min_heap_bytes: 8 * MIB,
        total_items: 80_000,
        effective_cap: None,
        distribution: Distribution::GuidedQueue {
            factor: 32.0,
            lock: LockClassId(0),
            dispatch: SimDuration::from_nanos(1_200),
            merge: Some(BatchMerge {
                class: LockClassId(2),
                held_ns: (800, 2_000),
            }),
        },
        lock_classes: vec![
            LockClass::new("query-queue"),
            LockClass::new("index-reader"),
            LockClass::new("results"),
        ],
        compute_ns: (50_000, 70_000),
        temps: vec![
            TempClass {
                count: 10,
                bytes: (32, 256),
                gap_ns: (40, 120),
            },
            TempClass {
                count: 4,
                bytes: (128, 512),
                gap_ns: (500, 1_500),
            },
        ],
        item_state: ItemStateSpec {
            count: 2,
            bytes: (512, 2_048),
        },
        carries: vec![CarrySpec {
            bytes: (1_024, 4_096),
            items: 48,
            probability: 0.3,
        }],
        permanent: Some(PermanentSpec {
            bytes: 2 * KIB,
            probability: 0.01,
        }),
        criticals: vec![CriticalSpec {
            class: LockClassId(1),
            held_ns: (600, 1_200),
            probability: 0.8,
        }],
    })
}

/// `sunflow`: ray tracer — scalable. Embarrassingly parallel ray bundles
/// with a per-bundle image-merge lock; extreme rates of tiny short-lived
/// vector/ray objects.
#[must_use]
pub fn sunflow() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "sunflow".into(),
        class: ScalabilityClass::Scalable,
        min_heap_bytes: 6 * MIB,
        total_items: 40_000,
        effective_cap: None,
        distribution: Distribution::GuidedQueue {
            factor: 16.0,
            lock: LockClassId(0),
            dispatch: SimDuration::from_nanos(1_000),
            merge: Some(BatchMerge {
                class: LockClassId(1),
                held_ns: (1_500, 3_000),
            }),
        },
        lock_classes: vec![
            LockClass::new("bundle-queue"),
            LockClass::new("image-merge"),
        ],
        compute_ns: (100_000, 140_000),
        temps: vec![
            TempClass {
                count: 18,
                bytes: (32, 128),
                gap_ns: (30, 100),
            },
            TempClass {
                count: 4,
                bytes: (64, 256),
                gap_ns: (400, 1_200),
            },
        ],
        item_state: ItemStateSpec {
            count: 1,
            bytes: (512, 1_024),
        },
        carries: vec![],
        permanent: Some(PermanentSpec {
            bytes: 8 * KIB,
            probability: 0.005,
        }),
        criticals: vec![CriticalSpec {
            class: LockClassId(1),
            held_ns: (1_500, 2_500),
            probability: 1.0,
        }],
    })
}

/// `h2`: in-memory SQL database — non-scalable. Transactions are spread
/// evenly across client threads but serialize on a coarse database latch
/// held for most of each transaction, so added threads buy almost
/// nothing and lock counts stay flat.
#[must_use]
pub fn h2() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "h2".into(),
        class: ScalabilityClass::NonScalable,
        min_heap_bytes: 32 * MIB,
        total_items: 30_000,
        effective_cap: None,
        distribution: Distribution::StaticSkewed {
            weights: vec![1.0; 64],
        },
        lock_classes: vec![LockClass::new("db-latch"), LockClass::new("tx-log")],
        compute_ns: (60_000, 90_000),
        temps: vec![
            TempClass {
                count: 8,
                bytes: (64, 512),
                gap_ns: (150, 400),
            },
            TempClass {
                count: 3,
                bytes: (256, 2_048),
                gap_ns: (1_000, 3_000),
            },
        ],
        item_state: ItemStateSpec {
            count: 2,
            bytes: (512, 4_096),
        },
        carries: vec![CarrySpec {
            bytes: (2_048, 8_192),
            items: 10,
            probability: 0.4,
        }],
        permanent: Some(PermanentSpec {
            bytes: 8 * KIB,
            probability: 0.05,
        }),
        criticals: vec![
            // the database latch: ~70% of the transaction
            CriticalSpec {
                class: LockClassId(0),
                held_ns: (180_000, 260_000),
                probability: 1.0,
            },
            CriticalSpec {
                class: LockClassId(1),
                held_ns: (2_000, 4_000),
                probability: 1.0,
            },
        ],
    })
}

/// `eclipse`: IDE workloads — non-scalable. Three to four worker threads
/// do nearly all the work under coarse workspace locks; a large permanent
/// metadata graph keeps the lifespan CDF insensitive to the configured
/// thread count (the paper's Figure 1c).
#[must_use]
pub fn eclipse() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "eclipse".into(),
        class: ScalabilityClass::NonScalable,
        min_heap_bytes: 48 * MIB,
        total_items: 25_000,
        effective_cap: Some(4),
        distribution: Distribution::StaticSkewed {
            weights: vec![0.4, 0.3, 0.2, 0.1],
        },
        lock_classes: vec![LockClass::new("workspace"), LockClass::new("resource-tree")],
        compute_ns: (100_000, 140_000),
        temps: vec![
            TempClass {
                count: 9,
                bytes: (64, 512),
                gap_ns: (150, 500),
            },
            TempClass {
                count: 4,
                bytes: (256, 1_024),
                gap_ns: (1_000, 4_000),
            },
        ],
        item_state: ItemStateSpec {
            count: 2,
            bytes: (1_024, 4_096),
        },
        carries: vec![CarrySpec {
            bytes: (4_096, 16_384),
            items: 12,
            probability: 0.3,
        }],
        permanent: Some(PermanentSpec {
            bytes: 16 * KIB,
            probability: 0.08,
        }),
        criticals: vec![
            CriticalSpec {
                class: LockClassId(0),
                held_ns: (5_000, 15_000),
                probability: 0.7,
            },
            CriticalSpec {
                class: LockClassId(1),
                held_ns: (1_000, 3_000),
                probability: 0.5,
            },
        ],
    })
}

/// `jython`: Python interpreter — non-scalable. An interpreter lock held
/// for a large share of every item plus a hard 3–4-thread concentration
/// of work, independent of the configured thread count.
#[must_use]
pub fn jython() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "jython".into(),
        class: ScalabilityClass::NonScalable,
        min_heap_bytes: 12 * MIB,
        total_items: 35_000,
        effective_cap: Some(4),
        distribution: Distribution::StaticSkewed {
            weights: vec![0.45, 0.30, 0.15, 0.10],
        },
        lock_classes: vec![LockClass::new("interp-lock"), LockClass::new("module-dict")],
        compute_ns: (80_000, 120_000),
        temps: vec![
            TempClass {
                count: 12,
                bytes: (32, 256),
                gap_ns: (100, 300),
            },
            TempClass {
                count: 3,
                bytes: (128, 512),
                gap_ns: (800, 2_000),
            },
        ],
        item_state: ItemStateSpec {
            count: 1,
            bytes: (256, 1_024),
        },
        carries: vec![CarrySpec {
            bytes: (512, 2_048),
            items: 5,
            probability: 0.3,
        }],
        permanent: Some(PermanentSpec {
            bytes: 4 * KIB,
            probability: 0.02,
        }),
        criticals: vec![
            CriticalSpec {
                class: LockClassId(0),
                held_ns: (30_000, 50_000),
                probability: 1.0,
            },
            CriticalSpec {
                class: LockClassId(1),
                held_ns: (500, 1_500),
                probability: 0.4,
            },
        ],
    })
}

/// All six benchmarks, in the paper's order.
#[must_use]
pub fn all_apps() -> Vec<SyntheticApp> {
    vec![sunflow(), lusearch(), xalan(), h2(), eclipse(), jython()]
}

/// The three scalable benchmarks (sunflow, lusearch, xalan).
#[must_use]
pub fn scalable_apps() -> Vec<SyntheticApp> {
    all_apps()
        .into_iter()
        .filter(|a| a.class() == ScalabilityClass::Scalable)
        .collect()
}

/// The three non-scalable benchmarks (h2, eclipse, jython).
#[must_use]
pub fn non_scalable_apps() -> Vec<SyntheticApp> {
    all_apps()
        .into_iter()
        .filter(|a| a.class() == ScalabilityClass::NonScalable)
        .collect()
}

/// Looks an app up by name.
#[must_use]
pub fn app_by_name(name: &str) -> Option<SyntheticApp> {
    all_apps().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_roster_is_complete() {
        let names: Vec<_> = all_apps().iter().map(|a| a.name().to_owned()).collect();
        assert_eq!(
            names,
            vec!["sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"]
        );
    }

    #[test]
    fn classification_matches_the_paper() {
        for app in scalable_apps() {
            assert!(matches!(app.name(), "sunflow" | "lusearch" | "xalan"));
        }
        for app in non_scalable_apps() {
            assert!(matches!(app.name(), "h2" | "eclipse" | "jython"));
        }
    }

    #[test]
    fn jython_and_eclipse_concentrate_work_in_few_threads() {
        for app in [jython(), eclipse()] {
            assert_eq!(app.effective_workers(48), 4, "{}", app.name());
            let shares = app.distribution().shares(4);
            assert!(shares[0] > shares[3], "skewed shares for {}", app.name());
        }
    }

    #[test]
    fn scalable_apps_use_a_guided_queue() {
        for app in scalable_apps() {
            assert!(
                matches!(app.distribution(), Distribution::GuidedQueue { .. }),
                "{}",
                app.name()
            );
            assert_eq!(app.effective_workers(48), 48, "{}", app.name());
        }
    }

    #[test]
    fn every_critical_references_a_declared_lock_class() {
        for app in all_apps() {
            let n = app.lock_classes().len();
            for crit in &app.spec().criticals {
                assert!(crit.class.0 < n, "{} lock class OOB", app.name());
            }
            if let Distribution::GuidedQueue { lock, .. } = app.distribution() {
                assert!(lock.0 < n, "{} queue lock OOB", app.name());
            }
        }
    }

    #[test]
    fn items_generate_for_every_app() {
        let mut rng = StdRng::seed_from_u64(1);
        for app in all_apps() {
            let item = app.make_item(&mut rng);
            assert!(!item.is_empty(), "{}", app.name());
            assert!(item.alloc_bytes() > 0, "{}", app.name());
            assert!(item.cpu_time().as_nanos() > 10_000, "{}", app.name());
        }
    }

    #[test]
    fn h2_latch_dominates_the_item() {
        let app = h2();
        let latch = &app.spec().criticals[0];
        assert_eq!(latch.probability, 1.0);
        // the latch dominates the transaction: even its shortest hold
        // exceeds the longest non-latch compute
        assert!(latch.held_ns.0 >= app.spec().compute_ns.1);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(app_by_name("xalan").unwrap().name(), "xalan");
        assert!(app_by_name("nope").is_none());
    }

    #[test]
    fn scaled_app_keeps_identity() {
        let tiny = xalan().scaled(0.01);
        assert_eq!(tiny.name(), "xalan");
        assert_eq!(tiny.total_items(), 600);
    }
}
