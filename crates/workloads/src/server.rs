//! Deterministic server-scale request workload model.
//!
//! A [`ServerSpec`] describes a request/response service the runtime can
//! execute instead of a batch benchmark: an arrival process (open-loop
//! Poisson or closed-loop clients with think time), a mix of request
//! classes (service time, an optional critical section against the
//! `scalesim-sync` monitors, an allocation burst against the heap/GC), a
//! client-side robustness policy (timeout, capped exponential backoff with
//! deterministic jitter, retry budget), and a server-side overload policy
//! (bounded accept queue, admission control, deadline shedding, and a
//! degraded mode that sheds the lowest-priority classes first).
//!
//! Everything here is pure data plus pure functions of `(spec, seed)`:
//! arrival times, per-request service draws and retry jitter are all keyed
//! splitmix64 hashes or dedicated [`RngFactory`] streams, so two runs of
//! the same spec at the same seed are byte-identical — including across
//! checkpoint resume and multi-process campaign merges.

use rand::Rng;
use scalesim_simkit::{splitmix64, RngFactory};

/// Salt for per-request service-time draws.
pub const SALT_SERVICE: u64 = 0x5e2f_9d13_8b67_a905;
/// Salt for per-request class selection.
pub const SALT_CLASS: u64 = 0xc3a5_17de_442b_96e8;
/// Salt for retry-backoff jitter.
pub const SALT_JITTER: u64 = 0x2b99_6e01_fd5c_4a37;
/// Salt for per-request critical-section hold draws.
pub const SALT_HOLD: u64 = 0x81d4_2c6b_50f3_e19a;
/// Salt for closed-loop think-time draws.
pub const SALT_THINK: u64 = 0x6fa8_b35c_07e9_d241;

/// How requests arrive at the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: a Poisson process at a fixed offered rate. Arrivals keep
    /// coming regardless of server state — the precondition for
    /// metastable overload (backlog forms during a stall and the offered
    /// load never relents).
    OpenPoisson {
        /// Offered load in requests per second.
        rate_per_sec: u64,
    },
    /// Closed loop: `clients` clients that each think, issue one request,
    /// wait for the reply (or timeout), and think again. Offered load is
    /// self-limiting — the setting Gunther's USL load testing assumes.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
        /// Think-time range in nanoseconds (inclusive).
        think_ns: (u64, u64),
    },
}

/// An optional per-request critical section against a named monitor class.
#[derive(Debug, Clone, PartialEq)]
pub struct LockProfile {
    /// Monitor class name (becomes a `LockTable` class).
    pub class: String,
    /// Hold-time range in nanoseconds (inclusive).
    pub held_ns: (u64, u64),
}

/// One request class in the arrival mix.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestClass {
    /// Class name (for tables and timeline tracks).
    pub name: String,
    /// Relative arrival weight within the mix.
    pub weight: u32,
    /// Importance: 0 is most important. Degraded mode sheds the classes
    /// with the highest value first.
    pub priority: u8,
    /// Service-time range in nanoseconds (inclusive).
    pub service_ns: (u64, u64),
    /// Optional critical section taken while serving.
    pub lock: Option<LockProfile>,
    /// Bytes allocated per request served (drives nursery pressure).
    pub alloc_bytes: u64,
}

/// Client retry backoff discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum Backoff {
    /// Retry immediately — the naive policy that converts a transient
    /// stall into a retry storm.
    None,
    /// Capped exponential backoff: attempt `k` waits
    /// `min(base * 2^(k-1), cap)` plus deterministic jitter in
    /// `[0, base)`.
    Exponential {
        /// First-retry delay in nanoseconds.
        base_ns: u64,
        /// Upper bound on the delay in nanoseconds.
        cap_ns: u64,
    },
}

impl Backoff {
    /// Delay before retry attempt `attempt` (1-based) of request `req`,
    /// with jitter derived from `(seed, req, attempt)`.
    #[must_use]
    pub fn delay_ns(&self, seed: u64, req: u64, attempt: u32) -> u64 {
        match *self {
            Backoff::None => 0,
            Backoff::Exponential { base_ns, cap_ns } => {
                let shift = attempt.saturating_sub(1).min(32);
                let raw = base_ns.saturating_mul(1u64 << shift).min(cap_ns);
                let jitter = if base_ns == 0 {
                    0
                } else {
                    splitmix64(seed ^ SALT_JITTER ^ req ^ u64::from(attempt)) % base_ns
                };
                raw.saturating_add(jitter)
            }
        }
    }
}

/// Client-side robustness knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPolicy {
    /// Per-request timeout in nanoseconds; a reply after this is wasted
    /// (orphan) work.
    pub timeout_ns: u64,
    /// Maximum retries per original request (0 = never retry).
    pub max_retries: u32,
    /// Delay discipline between attempts.
    pub backoff: Backoff,
    /// Global retry budget for the whole run: once this many retries have
    /// been issued, further failures are abandoned instead of retried.
    pub retry_budget: u64,
}

/// Server-side overload-control knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerPolicy {
    /// Bounded accept-queue capacity; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Concurrency-restriction cap on admitted requests (queued plus in
    /// service); `None` admits up to `queue_cap`.
    pub admission_cap: Option<usize>,
    /// Shed a request at dequeue if it has already waited longer than
    /// this (deadline-based load shedding).
    pub deadline_shed_ns: Option<u64>,
    /// Queue-depth watermark: above it the server enters degraded mode
    /// and sheds arrivals from the lowest-priority classes.
    pub degrade_above: Option<usize>,
}

/// Full parameter set for one server run.
///
/// The worker-pool size is the run's configured mutator thread count, so
/// the same spec sweeps across the thread axis like every other workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Policy label ("naive", "robust", …) for tables and manifests.
    pub name: String,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// Run length in simulated nanoseconds; whatever is still unsettled
    /// at the horizon is reported as in-flight.
    pub horizon_ns: u64,
    /// The request-class mix (must be non-empty).
    pub classes: Vec<RequestClass>,
    /// Client-side policy.
    pub client: ClientPolicy,
    /// Server-side policy.
    pub policy: ServerPolicy,
    /// Window `[start, end)` during which GC-stall chaos faults are
    /// consulted — makes the injected fault transient.
    pub fault_window_ns: Option<(u64, u64)>,
    /// Goodput is also measured over the tail `[measure_from_ns, horizon)`
    /// — the window that distinguishes metastable collapse (goodput stays
    /// depressed after the fault ends) from recovery.
    pub measure_from_ns: u64,
}

impl ServerSpec {
    /// The default two-class request mix: a high-priority "api" class
    /// with a session-lock critical section and a lower-priority "batch"
    /// class with a bigger allocation burst.
    #[must_use]
    pub fn default_classes() -> Vec<RequestClass> {
        vec![
            RequestClass {
                name: "api".into(),
                weight: 3,
                priority: 0,
                service_ns: (80_000, 120_000),
                // Short holds: at the top of the thread sweep the mix
                // offers ~250 k api requests/s through this one monitor,
                // so a ~2 us mean hold keeps the lock near 50% utilization
                // — saturated servers should fail through the queue, not
                // through an accidentally-undersized lock.
                lock: Some(LockProfile {
                    class: "session".into(),
                    held_ns: (1_000, 3_000),
                }),
                alloc_bytes: 2_048,
            },
            RequestClass {
                name: "batch".into(),
                weight: 1,
                priority: 1,
                service_ns: (150_000, 250_000),
                lock: None,
                alloc_bytes: 8_192,
            },
        ]
    }

    /// The naive policy: generous queue, no admission control, immediate
    /// retries. This is the configuration that turns a transient stall
    /// into a persistent retry storm.
    #[must_use]
    pub fn naive(rate_per_sec: u64) -> ServerSpec {
        ServerSpec {
            name: "naive".into(),
            arrival: ArrivalProcess::OpenPoisson { rate_per_sec },
            horizon_ns: 2_000_000_000,
            classes: Self::default_classes(),
            client: ClientPolicy {
                timeout_ns: 10_000_000,
                max_retries: 8,
                backoff: Backoff::None,
                retry_budget: u64::MAX,
            },
            policy: ServerPolicy {
                queue_cap: 65_536,
                admission_cap: None,
                deadline_shed_ns: None,
                degrade_above: None,
            },
            fault_window_ns: None,
            measure_from_ns: 1_000_000_000,
        }
    }

    /// The robust policy: admission control (concurrency restriction à la
    /// Dice & Kogan), deadline shedding at the client timeout, capped
    /// exponential backoff with jitter, and a bounded retry count.
    #[must_use]
    pub fn robust(rate_per_sec: u64, admission_cap: usize) -> ServerSpec {
        let mut spec = Self::naive(rate_per_sec);
        spec.name = "robust".into();
        spec.client.max_retries = 3;
        spec.client.backoff = Backoff::Exponential {
            base_ns: 10_000_000,
            cap_ns: 200_000_000,
        };
        spec.client.retry_budget = 100_000;
        spec.policy.admission_cap = Some(admission_cap);
        spec.policy.deadline_shed_ns = Some(spec.client.timeout_ns);
        spec
    }

    /// Returns a copy with the transient fault window set.
    #[must_use]
    pub fn with_fault_window(mut self, start_ns: u64, end_ns: u64) -> ServerSpec {
        self.fault_window_ns = Some((start_ns, end_ns));
        self
    }

    /// Applies `SCALESIM_SERVER_*` environment overrides: `RATE`
    /// (requests/sec), `TIMEOUT_US`, `QUEUE` (accept-queue capacity),
    /// `ADMIT` (admission cap; 0 removes it), `DEGRADE` (degraded-mode
    /// watermark; 0 removes it). Malformed values are ignored — like the
    /// chaos knobs, a typo must not refuse to run.
    #[must_use]
    pub fn with_env_overrides(mut self) -> ServerSpec {
        if let Some(rate) = env_u64("SCALESIM_SERVER_RATE") {
            self.arrival = ArrivalProcess::OpenPoisson { rate_per_sec: rate };
        }
        if let Some(us) = env_u64("SCALESIM_SERVER_TIMEOUT_US") {
            self.client.timeout_ns = us.saturating_mul(1_000);
        }
        if let Some(cap) = env_u64("SCALESIM_SERVER_QUEUE") {
            self.policy.queue_cap = cap as usize;
        }
        if let Some(cap) = env_u64("SCALESIM_SERVER_ADMIT") {
            self.policy.admission_cap = if cap == 0 { None } else { Some(cap as usize) };
        }
        if let Some(mark) = env_u64("SCALESIM_SERVER_DEGRADE") {
            self.policy.degrade_above = if mark == 0 { None } else { Some(mark as usize) };
        }
        self
    }

    /// Picks the request class for request `req` from the weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no classes or all weights are zero.
    #[must_use]
    pub fn class_of(&self, seed: u64, req: u64) -> usize {
        let total: u64 = self.classes.iter().map(|c| u64::from(c.weight)).sum();
        assert!(total > 0, "server spec needs a non-empty weighted mix");
        let mut pick = splitmix64(seed ^ SALT_CLASS ^ req) % total;
        for (i, class) in self.classes.iter().enumerate() {
            let w = u64::from(class.weight);
            if pick < w {
                return i;
            }
            pick -= w;
        }
        self.classes.len() - 1
    }

    /// Service-time draw for attempt-independent request `req`.
    #[must_use]
    pub fn service_ns(&self, seed: u64, req: u64, class: usize) -> u64 {
        keyed_range(seed ^ SALT_SERVICE, req, self.classes[class].service_ns)
    }

    /// Critical-section hold draw for request `req`, if the class has one.
    #[must_use]
    pub fn hold_ns(&self, seed: u64, req: u64, class: usize) -> Option<u64> {
        self.classes[class]
            .lock
            .as_ref()
            .map(|l| keyed_range(seed ^ SALT_HOLD, req, l.held_ns))
    }
}

/// `lo + hash(key) % width` over an inclusive range: order-independent
/// per-request randomness (the draw depends only on the key, never on how
/// many draws other requests made first).
#[must_use]
pub fn keyed_range(seed: u64, key: u64, (lo, hi): (u64, u64)) -> u64 {
    assert!(lo <= hi, "empty range {lo}..={hi}");
    lo + splitmix64(seed ^ key) % (hi - lo + 1)
}

/// The deterministic open-loop Poisson arrival schedule: every arrival
/// time in `[0, horizon_ns)` at `rate_per_sec`, from the run's dedicated
/// `server-arrival` RNG stream. The engine consumes this lazily; tests
/// assert it directly.
#[must_use]
pub fn open_poisson_times(rate_per_sec: u64, seed: u64, horizon_ns: u64) -> Vec<u64> {
    let mut times = Vec::new();
    if rate_per_sec == 0 {
        return times;
    }
    let mut rng = RngFactory::new(seed).stream("server-arrival", 0);
    let mut at = 0u64;
    loop {
        at += poisson_gap_ns(rate_per_sec, &mut rng);
        if at >= horizon_ns {
            return times;
        }
        times.push(at);
    }
}

/// One exponential inter-arrival gap (≥ 1 ns so the schedule strictly
/// advances) drawn from `rng`.
#[must_use]
pub fn poisson_gap_ns(rate_per_sec: u64, rng: &mut rand::rngs::StdRng) -> u64 {
    let u: f64 = rng.gen();
    let gap = -(1.0 - u).ln() * 1e9 / rate_per_sec as f64;
    (gap as u64).max(1)
}

/// Think-time draw for closed-loop client `client`, iteration `round`.
#[must_use]
pub fn think_ns(seed: u64, client: u64, round: u64, range: (u64, u64)) -> u64 {
    keyed_range(
        seed ^ SALT_THINK,
        client.wrapping_mul(0x1_0000_0001) ^ round,
        range,
    )
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_rate_accurate() {
        let a = open_poisson_times(100_000, 42, 1_000_000_000);
        let b = open_poisson_times(100_000, 42, 1_000_000_000);
        assert_eq!(a, b);
        // ~100k arrivals over one second, within 10%.
        assert!((90_000..110_000).contains(&a.len()), "{} arrivals", a.len());
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let c = open_poisson_times(100_000, 43, 1_000_000_000);
        assert_ne!(a, c, "seed changes the schedule");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        assert!(open_poisson_times(0, 42, 1_000_000_000).is_empty());
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let b = Backoff::Exponential {
            base_ns: 1_000,
            cap_ns: 10_000,
        };
        let d1 = b.delay_ns(42, 7, 1);
        let d2 = b.delay_ns(42, 7, 2);
        let d3 = b.delay_ns(42, 7, 3);
        assert!((1_000..2_000).contains(&d1), "{d1}");
        assert!((2_000..3_000).contains(&d2), "{d2}");
        assert!((4_000..5_000).contains(&d3), "{d3}");
        // Past the cap the exponential part stops growing.
        let d9 = b.delay_ns(42, 7, 9);
        assert!((10_000..11_000).contains(&d9), "{d9}");
        // Deterministic per (seed, req, attempt).
        assert_eq!(b.delay_ns(42, 7, 2), b.delay_ns(42, 7, 2));
        assert_eq!(Backoff::None.delay_ns(42, 7, 3), 0);
    }

    #[test]
    fn class_mix_respects_weights() {
        let spec = ServerSpec::naive(10_000);
        let mut counts = vec![0u64; spec.classes.len()];
        for req in 0..4_000 {
            counts[spec.class_of(42, req)] += 1;
        }
        // 3:1 mix → api picks roughly three quarters.
        let api_share = counts[0] as f64 / 4_000.0;
        assert!((0.70..0.80).contains(&api_share), "{api_share}");
    }

    #[test]
    fn per_request_draws_are_order_independent() {
        let spec = ServerSpec::naive(10_000);
        // The draw for request 5 is the same whether or not other
        // requests drew first — it is a pure function of the key.
        let before = spec.service_ns(42, 5, 0);
        let _ = spec.service_ns(42, 6, 0);
        let _ = spec.service_ns(42, 7, 1);
        assert_eq!(spec.service_ns(42, 5, 0), before);
        let (lo, hi) = spec.classes[0].service_ns;
        assert!((lo..=hi).contains(&before));
    }

    #[test]
    fn presets_differ_only_in_policy() {
        let naive = ServerSpec::naive(50_000);
        let robust = ServerSpec::robust(50_000, 96);
        assert_eq!(naive.arrival, robust.arrival);
        assert_eq!(naive.classes, robust.classes);
        assert_eq!(naive.policy.admission_cap, None);
        assert_eq!(robust.policy.admission_cap, Some(96));
        assert!(matches!(naive.client.backoff, Backoff::None));
        assert!(matches!(robust.client.backoff, Backoff::Exponential { .. }));
        assert_eq!(
            robust.policy.deadline_shed_ns,
            Some(robust.client.timeout_ns)
        );
    }

    #[test]
    fn fault_window_builder_sets_the_window() {
        let spec = ServerSpec::naive(1_000).with_fault_window(5, 10);
        assert_eq!(spec.fault_window_ns, Some((5, 10)));
    }

    #[test]
    fn hold_draw_only_for_locked_classes() {
        let spec = ServerSpec::naive(1_000);
        assert!(spec.hold_ns(42, 3, 0).is_some(), "api has a session lock");
        assert!(spec.hold_ns(42, 3, 1).is_none(), "batch is lock-free");
    }
}
