#!/usr/bin/env bash
# Times the full figure sweep at the pinned paper seed and writes
# BENCH_sweep.json ({events_per_sec, sweep_wall_ms, ...}) at the repo
# root. Pass an alternative output path as $1.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sweep.json}"
cargo build --release -p scalesim-bench --bin bench_sweep --bin bench_check
./target/release/bench_sweep "$out"
# Fail when any recorded overhead exceeds its stated budget (or is
# negative, which means the measurement itself is broken).
exec ./target/release/bench_check "$out"
