#!/usr/bin/env bash
# Times the full figure sweep at the pinned paper seed and writes
# BENCH_sweep.json ({events_per_sec, sweep_wall_ms, ...}) at the repo
# root. Pass an alternative output path as $1. Every successful run is
# also appended (git SHA + date + full report) to
# results/bench_history.jsonl so performance drift stays diagnosable.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sweep.json}"
cargo build --release -p scalesim-bench \
  --bin bench_sweep --bin bench_check --bin bench_history
./target/release/bench_sweep "$out"
# Fail when any recorded overhead exceeds its stated budget (or is
# negative, which means the measurement itself is broken).
./target/release/bench_check "$out"
# Budgets hold: record the run in the durable history ledger.
sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
./target/release/bench_history "$out" results/bench_history.jsonl "$sha" "$date"
