#!/usr/bin/env bash
# Times the full figure sweep at the pinned paper seed and writes
# BENCH_sweep.json ({events_per_sec, sweep_wall_ms, ...}) at the repo
# root. Pass an alternative output path as $1.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scalesim-bench --bin bench_sweep
exec ./target/release/bench_sweep "${1:-BENCH_sweep.json}"
