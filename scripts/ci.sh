#!/usr/bin/env bash
# Tier-1 verification: format, lints, release build, full test suite.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo '== cargo fmt --check'
cargo fmt --all -- --check
echo '== cargo clippy (-D warnings)'
cargo clippy --workspace --all-targets -- -D warnings
echo '== cargo build --release'
cargo build --release --workspace
echo '== cargo test -q'
cargo test -q
echo 'CI OK'
