#!/usr/bin/env bash
# Tier-1 verification: format, lints, release build, full test suite.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo '== cargo fmt --check'
cargo fmt --all -- --check
echo '== cargo clippy (-D warnings)'
cargo clippy --workspace --all-targets -- -D warnings
echo '== cargo build --release'
cargo build --release --workspace
echo '== cargo test -q'
cargo test -q
echo '== chaos self-validation (debug assertions)'
cargo test -q --test chaos
echo '== chaos CLI smoke (env-driven faults + budget must exit 0)'
SCALESIM_CHAOS='gc-stall=5,gc-stall-factor=0.05' \
SCALESIM_MAX_EVENTS=50000000 \
    cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 > /dev/null
echo '== quarantine CLI smoke (panicking runs must yield quar rows, exit 0)'
SCALESIM_CHAOS='panic-at=2000' \
    cargo run --release -q -p scalesim-experiments -- \
    workdist --scale 0.02 --threads 4 > /dev/null 2>&1
echo '== traced smoke (timeline export + run manifest must validate)'
rm -rf target/ci-trace
cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 \
    --out target/ci-trace --trace target/ci-trace/lusearch_trace.json > /dev/null
# fig1d sweeps one RunSpec per thread count => exactly 2 manifest lines.
cargo run --release -q -p scalesim-experiments --bin trace_check -- \
    target/ci-trace/lusearch_trace.json target/ci-trace/manifest.jsonl 2
echo 'CI OK'
