#!/usr/bin/env bash
# Tier-1 verification: format, lints, release build, full test suite.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo '== cargo fmt --check'
cargo fmt --all -- --check
echo '== cargo clippy (-D warnings)'
cargo clippy --workspace --all-targets -- -D warnings
echo '== cargo build --release'
cargo build --release --workspace
echo '== cargo test -q'
cargo test -q
echo '== chaos self-validation (debug assertions)'
cargo test -q --test chaos
echo '== chaos CLI smoke (env-driven faults + budget must exit 0)'
SCALESIM_CHAOS='gc-stall=5,gc-stall-factor=0.05' \
SCALESIM_MAX_EVENTS=50000000 \
    cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 > /dev/null
echo '== quarantine CLI smoke (panicking runs must yield quar rows, exit 2, repro file)'
rm -rf target/ci-quar
rc=0
SCALESIM_CHAOS='panic-at=2000' \
    cargo run --release -q -p scalesim-experiments -- \
    workdist --scale 0.02 --threads 4 --out target/ci-quar > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected degraded exit 2, got $rc"; exit 1; }
repro=$(ls target/ci-quar/repro-*.json 2>/dev/null | head -1 || true)
[ -n "$repro" ] || { echo "no repro file written"; exit 1; }
echo '== shrinker repro smoke (repro file must re-fail, exit 0)'
cargo run --release -q -p scalesim-experiments -- repro "$repro" > /dev/null 2>&1
echo '== resume smoke (kill-free resume must reproduce identical tables)'
rm -rf target/ci-resume
cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 \
    --out target/ci-resume/a --checkpoint target/ci-resume/ckpt > /dev/null
cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 \
    --out target/ci-resume/b --checkpoint target/ci-resume/ckpt --resume > /dev/null
for csv in target/ci-resume/a/*.csv; do
    diff "$csv" "target/ci-resume/b/$(basename "$csv")"
done
# Manifests must match too, once the host-wall field is stripped.
sed 's/"host_ns":[0-9]*/"host_ns":0/' target/ci-resume/a/manifest.jsonl > target/ci-resume/a.norm
sed 's/"host_ns":[0-9]*/"host_ns":0/' target/ci-resume/b/manifest.jsonl > target/ci-resume/b.norm
diff target/ci-resume/a.norm target/ci-resume/b.norm
echo '== audit smoke (clean pinned runs must audit clean, exit 0)'
rm -rf target/ci-audit
cargo run --release -q -p scalesim-experiments -- audit --out target/ci-audit > /dev/null
echo '== audit chaos smoke (injected faults must be expected findings, exit 2, repro file)'
rc=0
SCALESIM_CHAOS='drop-wakeup=64' \
    cargo run --release -q -p scalesim-experiments -- \
    audit --out target/ci-audit > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected audit exit 2, got $rc"; exit 1; }
arepro=$(ls target/ci-audit/audit-*.json 2>/dev/null | head -1 || true)
[ -n "$arepro" ] || { echo "no audit repro file written"; exit 1; }
echo '== audit repro smoke (audit-*.json must round-trip through repro and re-fail, exit 0)'
cargo run --release -q -p scalesim-experiments -- repro "$arepro" > /dev/null 2>&1
echo '== campaign smoke (2-worker campaign must merge byte-identical to a single run)'
rm -rf target/ci-campaign
cargo run --release -q -p scalesim-experiments -- \
    scaletable --scale 0.02 --threads 4,8 \
    --out target/ci-campaign/single > /dev/null
cargo run --release -q -p scalesim-experiments -- \
    campaign scaletable --scale 0.02 --threads 4,8 \
    --dir target/ci-campaign/dir --workers 2 \
    --out target/ci-campaign/merged > /dev/null
diff target/ci-campaign/single/scaletable.csv target/ci-campaign/merged/scaletable.csv
# The merged manifest comes pre-zeroed; strip the single run's host-wall field.
sed 's/"host_ns":[0-9]*/"host_ns":0/' target/ci-campaign/single/manifest.jsonl \
    > target/ci-campaign/single.norm
diff target/ci-campaign/single.norm target/ci-campaign/merged/manifest.jsonl
echo '== campaign degraded smoke (panicking units must quarantine, exit 2)'
rc=0
SCALESIM_CHAOS='panic-at=2000' \
    cargo run --release -q -p scalesim-experiments -- \
    campaign scaletable --scale 0.02 --threads 4 \
    --dir target/ci-campaign/chaos --workers 2 \
    --out target/ci-campaign/chaos-out > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected degraded campaign exit 2, got $rc"; exit 1; }
echo '== analyze smoke (analytics.json must validate, re-derive byte-identical, stay stable)'
rm -rf target/ci-analyze
cargo run --release -q -p scalesim-experiments -- \
    scaletable --scale 0.02 --threads 4,8 \
    --out target/ci-analyze/a --checkpoint target/ci-analyze/ckpt \
    --analyze > /dev/null
cargo run --release -q -p scalesim-experiments -- \
    analyze --scale 0.02 --threads 4,8 \
    --dir target/ci-analyze/ckpt --out target/ci-analyze/b > /dev/null
# Re-deriving from the checkpoint store must reproduce the exact bytes.
cmp target/ci-analyze/a/analytics.json target/ci-analyze/b/analytics.json
cargo run --release -q -p scalesim-experiments --bin trace_check -- \
    --analytics target/ci-analyze/a/analytics.json
# The sweep manifest must cross-link the artifact it was emitted with.
grep -q '"analytics":"analytics.json"' target/ci-analyze/a/manifest.jsonl
echo '== server smoke (ext-server artifact must run clean, manifest must carry latency/policy)'
rm -rf target/ci-server
cargo run --release -q -p scalesim-experiments -- \
    ext-server --scale 0.02 --threads 4 --out target/ci-server > /dev/null
grep -q '"policy":"no-fault"' target/ci-server/manifest.jsonl
grep -q '"lat_p50_ns":' target/ci-server/manifest.jsonl
grep -q '"lat_p999_ns":' target/ci-server/manifest.jsonl
grep -q '"degraded":false' target/ci-server/manifest.jsonl
echo '== server degraded smoke (forced degraded mode must surface as exit 2)'
rc=0
SCALESIM_SERVER_DEGRADE=1 \
    cargo run --release -q -p scalesim-experiments -- \
    ext-server --scale 0.02 --threads 4 --out target/ci-server-deg > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected degraded server exit 2, got $rc"; exit 1; }
grep -q '"degraded":true' target/ci-server-deg/manifest.jsonl
echo '== ext-locks smoke (lock-algorithm artifact must run clean, every algorithm present)'
rm -rf target/ci-locks
cargo run --release -q -p scalesim-experiments -- \
    ext-locks --scale 0.02 --threads 4,8 --out target/ci-locks > /dev/null
grep -q '^sunflow,mcs,' target/ci-locks/ext_locks.csv
grep -q '^xalan,malthusian,' target/ci-locks/ext_locks.csv
echo '== per-algorithm audit smoke (every lock algorithm must audit clean, exit 0)'
for alg in fifo mcs malthusian; do
    SCALESIM_LOCK_ALG="$alg" \
        cargo run --release -q -p scalesim-experiments -- \
        audit --out "target/ci-audit-$alg" > /dev/null
done
echo '== bench budget check (committed BENCH_sweep.json must respect its budgets)'
cargo run --release -q -p scalesim-bench --bin bench_check -- BENCH_sweep.json
echo '== traced smoke (timeline export + run manifest must validate)'
rm -rf target/ci-trace
cargo run --release -q -p scalesim-experiments -- \
    fig1d --scale 0.02 --threads 4,8 \
    --out target/ci-trace --trace target/ci-trace/lusearch_trace.json > /dev/null
# fig1d sweeps one RunSpec per thread count => exactly 2 manifest lines.
cargo run --release -q -p scalesim-experiments --bin trace_check -- \
    target/ci-trace/lusearch_trace.json target/ci-trace/manifest.jsonl 2
echo 'CI OK'
