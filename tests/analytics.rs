//! Golden tests for the offline scalability analytics: the USL
//! classification must reproduce the paper's scalable / non-scalable
//! split on the six seed workloads at the pinned seed, and the emitted
//! `analytics.json` artifact must be deterministic byte for byte.

use scalesim::analytics::UslClass;
use scalesim::experiments::{run_analytics, ExpParams};
use scalesim::trace::check::validate_analytics;

/// The pinned golden configuration: paper seed 42, the CI-sized 5%
/// scale, and the 4/16/48 sweep — the smallest grid on which the USL
/// classification reproduces the paper's split robustly (two-point
/// grids under-constrain the coherency term).
fn golden_params() -> ExpParams {
    ExpParams::quick()
}

#[test]
fn usl_classification_reproduces_the_paper_split() {
    let report = run_analytics(&golden_params()).unwrap();
    assert_eq!(report.workloads.len(), 6);
    assert!(
        report.all_match_paper(),
        "paper split not reproduced:\n{}",
        report.render()
    );

    for w in &report.workloads {
        let fit = w.fit.expect("every seed workload fits");
        let class = w.class.expect("every seed workload classifies");
        match w.app.as_str() {
            // "we can characterize the first three applications as
            // scalable": near-linear, so contention stays small.
            "sunflow" | "lusearch" | "xalan" => {
                assert_eq!(class, UslClass::Scalable, "{}", w.app);
                assert!(fit.sigma < 0.25, "{}: sigma {:.3}", w.app, fit.sigma);
            }
            // "and the remainder as non-scalable": serialized enough
            // that the fitted curve peaks inside the measured range.
            "h2" | "eclipse" | "jython" => {
                assert_eq!(class, UslClass::CoherencyCollapsed, "{}", w.app);
                assert!(fit.sigma > 0.5, "{}: sigma {:.3}", w.app, fit.sigma);
                assert!(
                    fit.peak_concurrency() <= 48.0,
                    "{}: peak n* {:.1} should fall inside the sweep",
                    w.app,
                    fit.peak_concurrency()
                );
            }
            other => panic!("unexpected app {other}"),
        }
        // Attribution and monitor percentiles come from real runs.
        assert!(w.profile.wall_ns > 0, "{}: empty profile", w.app);
        assert!(w.profile.running_ns > 0, "{}: no running time", w.app);
        assert!(w.hold.count > 0, "{}: no monitor holds", w.app);
    }
}

#[test]
fn analytics_artifact_is_deterministic_and_validates() {
    let params = golden_params();
    let first = run_analytics(&params).unwrap().to_json_string();
    // A second derivation (memo-served, same inputs) must be
    // byte-identical — the property the checkpoint/campaign re-derivation
    // paths rely on.
    let second = run_analytics(&params).unwrap().to_json_string();
    assert_eq!(first, second, "analytics artifact must be deterministic");

    let check = validate_analytics(&first).expect("artifact validates");
    assert_eq!(check.workloads, 6);
    assert!(check.all_match_paper);
    // Golden classification snapshot: any change to this split is a
    // paper-fidelity regression and must be deliberate.
    let classes: Vec<String> = check
        .classes
        .iter()
        .map(|(app, class)| format!("{app}={class}"))
        .collect();
    assert_eq!(
        classes.join(" "),
        "sunflow=scalable lusearch=scalable xalan=scalable \
         h2=coherency-collapsed eclipse=coherency-collapsed jython=coherency-collapsed"
    );
}
