//! Standing oracle for the concurrency auditor: a clean golden sweep must
//! audit clean, and every chaos class a [`ChaosPlan`] injects must be
//! detected by the matching offline check — as an *expected* finding,
//! cross-validated against the chaos instants in the same timeline.
//!
//! The specs are pinned to the chaos suite's fixtures (h2 @16 and xalan
//! @8 at scale 0.02, seed 42) so the auditor is exercised on exactly the
//! schedules the invariant monitors are validated on.

use scalesim::audit::Check;
use scalesim::experiments::{audit_spec, run_isolated, write_audit_repro, RunSpec};
use scalesim::runtime::{JsonValue, JvmConfig, ReproSpec};
use scalesim::simkit::{ChaosConfig, RunBudget};
use scalesim::workloads::{h2, xalan};

/// A tight event budget so an injected livelock can never hang the suite.
fn backstop() -> RunBudget {
    RunBudget {
        max_events: 4_000_000,
        max_sim_time: None,
        max_host_ms: None,
        watchdog_ms: None,
    }
}

/// The pinned audit spec: `app` at `threads` with `chaos`, scale 0.02,
/// seed 42, budget-backstopped.
fn spec(app: scalesim::workloads::SyntheticApp, threads: usize, chaos: ChaosConfig) -> RunSpec {
    let config = JvmConfig::builder()
        .threads(threads)
        .seed(42)
        .chaos(chaos)
        .budget(backstop())
        .monitors(true)
        .build()
        .unwrap();
    RunSpec {
        app: app.scaled(0.02),
        config,
    }
}

#[test]
fn golden_clean_sweep_audits_zero_findings() {
    for (app, threads) in [(h2(), 16), (xalan(), 8)] {
        let s = spec(app, threads, ChaosConfig::default());
        let (report, audit) = audit_spec(&s).expect("clean run");
        assert!(report.outcome.is_ok(), "{}", report.outcome);
        assert!(audit.complete, "{audit}");
        assert!(audit.is_clean(), "{audit}");
    }
}

#[test]
fn dropped_wakeup_is_detected_by_the_pairing_check() {
    let s = spec(
        h2(),
        16,
        ChaosConfig {
            drop_wakeup_period: 8,
            ..ChaosConfig::default()
        },
    );
    let (_, audit) = audit_spec(&s).expect("salvaged run");
    let lost: Vec<_> = audit
        .findings
        .iter()
        .filter(|f| f.class == "lost-wakeup")
        .collect();
    assert!(!lost.is_empty(), "no lost-wakeup finding: {audit}");
    assert!(lost.iter().all(|f| f.check == Check::WaitPairing));
    assert_eq!(audit.unexpected().len(), 0, "{audit}");
}

#[test]
fn spurious_wakeup_is_detected_by_the_pairing_check() {
    let s = spec(
        h2(),
        16,
        ChaosConfig {
            spurious_wakeup_period: 4,
            ..ChaosConfig::default()
        },
    );
    let (_, audit) = audit_spec(&s).expect("salvaged run");
    let spurious: Vec<_> = audit
        .findings
        .iter()
        .filter(|f| f.class == "spurious-wakeup")
        .collect();
    assert!(!spurious.is_empty(), "no spurious-wakeup finding: {audit}");
    assert!(spurious.iter().all(|f| f.check == Check::WaitPairing));
    assert_eq!(audit.unexpected().len(), 0, "{audit}");
}

#[test]
fn gc_stall_is_detected_by_the_happens_before_check() {
    let s = spec(
        xalan(),
        8,
        ChaosConfig {
            gc_stall_period: 1,
            gc_stall_factor: 1000.0,
            ..ChaosConfig::default()
        },
    );
    let (_, audit) = audit_spec(&s).expect("salvaged run");
    let stalls: Vec<_> = audit
        .findings
        .iter()
        .filter(|f| f.class == "gc-stall")
        .collect();
    assert!(!stalls.is_empty(), "no gc-stall finding: {audit}");
    assert!(stalls.iter().all(|f| f.check == Check::HappensBefore));
    assert!(stalls.iter().all(|f| f.expected), "{audit}");
    assert_eq!(audit.unexpected().len(), 0, "{audit}");
}

#[test]
fn findings_have_deterministic_fingerprints() {
    let chaos = ChaosConfig {
        drop_wakeup_period: 8,
        ..ChaosConfig::default()
    };
    let (_, first) = audit_spec(&spec(h2(), 16, chaos)).expect("salvaged run");
    let (_, second) = audit_spec(&spec(h2(), 16, chaos)).expect("salvaged run");
    assert!(!first.findings.is_empty());
    let a: Vec<u64> = first.findings.iter().map(|f| f.fingerprint()).collect();
    let b: Vec<u64> = second.findings.iter().map(|f| f.fingerprint()).collect();
    assert_eq!(a, b);
    assert_eq!(first.divergence, second.divergence);
}

#[test]
fn audit_repro_round_trips_through_the_repro_machinery() {
    let s = spec(
        h2(),
        16,
        ChaosConfig {
            drop_wakeup_period: 8,
            ..ChaosConfig::default()
        },
    );
    let (_, audit) = audit_spec(&s).expect("salvaged run");
    assert!(!audit.is_clean(), "{audit}");
    let dir = std::env::temp_dir().join(format!("scalesim-audit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = write_audit_repro(&s, &audit, &dir)
        .expect("write")
        .expect("finding-bearing report writes a file");

    // The file is a full ReproSpec (the parser ignores the audit_* keys),
    // reconstructs to the same memo key, and re-fails in isolation.
    let text = std::fs::read_to_string(&path).unwrap();
    let repro = ReproSpec::from_json(&JsonValue::parse(text.trim()).unwrap()).unwrap();
    assert!(repro.exact);
    assert_eq!(repro.spec_key, s.memo_key());
    let (app, config) = repro.reconstruct().unwrap();
    let rebuilt = RunSpec { app, config };
    assert_eq!(rebuilt.memo_key(), s.memo_key());
    assert!(
        run_isolated(&rebuilt).is_err(),
        "reconstructed chaos spec must re-fail"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
