//! Feature-interaction tests: configuration corners that no single
//! experiment exercises together.

use scalesim::gc::GcKind;
use scalesim::machine::{MachineTopology, Placement};
use scalesim::runtime::{Jvm, JvmConfig, OldGenPolicy, RunReport};
use scalesim::sched::SchedPolicy;
use scalesim::workloads::{xalan, AppModel};

fn items_complete(report: &RunReport, expected: u64) {
    assert_eq!(report.total_items(), expected);
    assert_eq!(
        report.trace.allocations(),
        report.trace.deaths() + report.trace.censored()
    );
}

#[test]
fn heaplets_with_biased_scheduling() {
    let app = xalan().scaled(0.02);
    let report = Jvm::new(
        JvmConfig::builder()
            .threads(8)
            .heaplets(true)
            .policy(SchedPolicy::Biased { cohorts: 2 })
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    items_complete(&report, app.total_items());
    assert!(report.gc.count(GcKind::LocalMinor) > 0);
    assert_eq!(report.gc.count(GcKind::Minor), 0);
}

#[test]
fn heaplets_with_concurrent_old_gen() {
    let app = xalan().scaled(0.25);
    let report = Jvm::new(
        JvmConfig::builder()
            .threads(16)
            .heaplets(true)
            .old_gen(OldGenPolicy::MostlyConcurrent)
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    items_complete(&report, app.total_items());
    // local minors always; old-gen activity only if promotion pressure
    // materialized at this scale
    assert!(report.gc.count(GcKind::LocalMinor) > 0);
}

#[test]
fn concurrent_old_gen_with_adaptive_sizing() {
    use scalesim::simkit::SimDuration;
    let app = xalan().scaled(0.1);
    let report = Jvm::new(
        JvmConfig::builder()
            .threads(16)
            .old_gen(OldGenPolicy::MostlyConcurrent)
            .pause_goal(SimDuration::from_millis(2))
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    items_complete(&report, app.total_items());
    assert_eq!(report.mutator_wall() + report.gc_time, report.wall_time);
}

#[test]
fn scatter_placement_with_oversubscription() {
    let app = xalan().scaled(0.02);
    let report = Jvm::new(
        JvmConfig::builder()
            .threads(24)
            .cores(8)
            .placement(Placement::Scatter)
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    items_complete(&report, app.total_items());
    assert_eq!(report.cores, 8);
}

#[test]
fn runs_on_the_xeon_preset() {
    let machine = MachineTopology::xeon_2s_32c();
    let app = xalan().scaled(0.05);
    let t4 = Jvm::new(
        JvmConfig::builder()
            .machine(machine.clone())
            .threads(4)
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    let t32 = Jvm::new(
        JvmConfig::builder()
            .machine(machine)
            .threads(32)
            .seed(3)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    items_complete(&t32, app.total_items());
    // the paper's qualitative conclusions carry over to a different box:
    let speedup = t4.wall_time.as_secs_f64() / t32.wall_time.as_secs_f64();
    assert!(speedup > 3.0, "xalan speedup on xeon: {speedup:.2}");
    assert!(
        t32.gc_share() > t4.gc_share(),
        "GC share must still grow with threads: {:.3} vs {:.3}",
        t32.gc_share(),
        t4.gc_share()
    );
    assert!(
        t32.trace.fraction_below(1 << 10) < t4.trace.fraction_below(1 << 10),
        "lifespan inflation must still appear"
    );
}

#[test]
fn cores_beyond_machine_are_clamped() {
    let cfg = JvmConfig::builder()
        .machine(MachineTopology::xeon_2s_32c())
        .threads(64)
        .build()
        .unwrap();
    assert_eq!(cfg.cores(), 32);
    let app = xalan().scaled(0.01);
    let report = Jvm::new(cfg).run(&app).unwrap();
    items_complete(&report, app.total_items());
    assert_eq!(report.per_thread.len(), 64);
}

#[test]
fn zero_helper_threads_is_leaner_but_equivalent_in_work() {
    let app = xalan().scaled(0.02);
    let base = JvmConfig::builder().threads(4).seed(9).build().unwrap();
    let mut no_helpers = JvmConfig::builder();
    no_helpers.threads(4).seed(9).helper_threads(0);
    let a = Jvm::new(base).run(&app).unwrap();
    let b = Jvm::new(no_helpers.build().unwrap()).run(&app).unwrap();
    items_complete(&a, app.total_items());
    items_complete(&b, app.total_items());
    assert!(b.wall_time <= a.wall_time, "helpers can only slow mutators");
}
