//! Cost-model sensitivity: the reproduced *shapes* must not depend on
//! the exact constants in the GC cost model. Each test re-checks a
//! headline claim with key constants halved and doubled.

use scalesim::gc::GcCostModel;
use scalesim::runtime::{Jvm, JvmConfig};
use scalesim::workloads::xalan;

/// A HotSpot-like model with copy cost and worker-sync overhead scaled.
fn scaled_model(threads: usize, copy_scale: f64, alpha_scale: f64) -> GcCostModel {
    let machine = scalesim::machine::MachineTopology::amd_6168();
    let mut m = GcCostModel::hotspot_like(threads, machine.mean_numa_factor(threads));
    m.copy_ns_per_byte *= copy_scale;
    m.worker_sync_alpha *= alpha_scale;
    m
}

fn gc_share(threads: usize, copy_scale: f64, alpha_scale: f64) -> f64 {
    let app = xalan().scaled(0.1);
    let report = Jvm::new(
        JvmConfig::builder()
            .threads(threads)
            .seed(42)
            .gc_model(scaled_model(threads, copy_scale, alpha_scale))
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    report.gc_share()
}

#[test]
fn gc_share_growth_is_robust_to_copy_cost() {
    for copy_scale in [0.5, 1.0, 2.0] {
        let low = gc_share(4, copy_scale, 1.0);
        let high = gc_share(48, copy_scale, 1.0);
        assert!(
            high > low * 3.0,
            "copy x{copy_scale}: GC share must grow sharply, got {low:.4} -> {high:.4}"
        );
    }
}

#[test]
fn gc_share_growth_is_robust_to_worker_sync_overhead() {
    for alpha_scale in [0.5, 1.0, 2.0] {
        let low = gc_share(4, 1.0, alpha_scale);
        let high = gc_share(48, 1.0, alpha_scale);
        assert!(
            high > low * 3.0,
            "alpha x{alpha_scale}: GC share must grow sharply, got {low:.4} -> {high:.4}"
        );
    }
}

#[test]
fn lifespan_shift_does_not_depend_on_the_gc_model_at_all() {
    // Figure 1d's CDF shift is a mutator-side phenomenon; an extreme GC
    // cost model must not change the measured lifespans qualitatively.
    let app = xalan().scaled(0.1);
    let frac = |copy_scale: f64, threads: usize| {
        Jvm::new(
            JvmConfig::builder()
                .threads(threads)
                .seed(42)
                .gc_model(scaled_model(threads, copy_scale, 1.0))
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap()
        .trace
        .fraction_below(1 << 10)
    };
    for copy_scale in [0.25, 4.0] {
        let at4 = frac(copy_scale, 4);
        let at48 = frac(copy_scale, 48);
        assert!(
            at4 - at48 > 0.2,
            "copy x{copy_scale}: shift {at4:.2} -> {at48:.2} must persist"
        );
    }
}

#[test]
fn classification_is_robust_to_seed() {
    use scalesim::workloads::h2;
    for seed in [1u64, 7, 99] {
        let fast = |app: &scalesim::workloads::SyntheticApp, threads: usize| {
            Jvm::new(
                JvmConfig::builder()
                    .threads(threads)
                    .seed(seed)
                    .build()
                    .unwrap(),
            )
            .run(&app.scaled(0.02))
            .unwrap()
            .wall_time
            .as_secs_f64()
        };
        let xa = xalan();
        let speedup = fast(&xa, 4) / fast(&xa, 32);
        assert!(speedup > 3.0, "seed {seed}: xalan speedup {speedup:.2}");
        let db = h2();
        let speedup = fast(&db, 4) / fast(&db, 32);
        assert!(speedup < 1.5, "seed {seed}: h2 speedup {speedup:.2}");
    }
}
