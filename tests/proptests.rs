//! Property-based tests over the core data structures and, at small
//! scale, whole simulations.
//!
//! `proptest` cannot be built in this repository's offline environment,
//! so these run on a small in-file harness: each property is checked for
//! many deterministically-seeded random cases, and a failure reports the
//! case seed to rerun. There is no shrinking — cases are kept small
//! enough to debug directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scalesim::metrics::{Cdf, LogHistogram};
use scalesim::simkit::baseline::BaselineQueue;
use scalesim::simkit::{EventQueue, SimDuration, SimTime};

/// Runs `check` once per case, each with an independent deterministic
/// RNG, attributing any failure to its case seed.
fn for_cases(cases: u64, check: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = 0xC0FF_EE00 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let outcome = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            check(&mut rng);
        });
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed for case {case} (seed {seed:#x}): {msg}");
        }
    }
}

fn sample_vec(rng: &mut StdRng, max_value: u64, len: std::ops::Range<usize>) -> Vec<u64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(0..max_value)).collect()
}

// ---------------------------------------------------------------------
// Event queue vs. two reference models
// ---------------------------------------------------------------------

/// The slab queue against a plain sorted-`Vec` model (no shifting):
/// schedule/cancel/pop agree with `(time, insertion order)` semantics.
#[test]
fn event_queue_matches_vec_model() {
    for_cases(256, |rng| {
        let mut queue: EventQueue<usize> = EventQueue::new();
        // Reference: (absolute time, insertion order, payload), popped in
        // lexicographic order.
        let mut model: Vec<(u64, usize, usize)> = Vec::new();
        let mut issued = Vec::new();
        let mut now = 0u64;

        for op in 0..rng.gen_range(0usize..200) {
            match rng.gen_range(0u32..3) {
                0 => {
                    let at = now + rng.gen_range(0u64..1000);
                    let id = queue.schedule_at(SimTime::from_nanos(at), op);
                    model.push((at, issued.len(), op));
                    issued.push(Some((id, issued.len())));
                }
                1 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..issued.len());
                    if let Some((id, ord)) = issued[i].take() {
                        let was_pending = model.iter().any(|&(_, o, _)| o == ord);
                        assert_eq!(queue.cancel(id), was_pending);
                        model.retain(|&(_, o, _)| o != ord);
                    }
                }
                _ => {
                    model.sort_unstable();
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    let got = queue.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((at, _, payload)), Some((t, p))) => {
                            assert_eq!(t, SimTime::from_nanos(at));
                            assert_eq!(p, payload);
                            now = at;
                        }
                        (e, g) => panic!("model {e:?} vs queue {g:?}"),
                    }
                }
            }
            assert_eq!(queue.len(), model.len());
        }
    });
}

/// The slab queue against the retired `BinaryHeap`+`HashSet`
/// implementation under random schedule/cancel/pop/`shift_all`
/// interleavings — every observable (pops, clock, length, peek,
/// cancellation results, lifetime counters) must agree, and `EventId`s
/// must never repeat across slot recycling.
#[test]
fn event_queue_matches_baseline_under_shifts() {
    for_cases(256, |rng| {
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut base: BaselineQueue<u64> = BaselineQueue::new();
        let mut ids = Vec::new(); // (slab id, baseline id), in issue order
        let mut ever_issued = std::collections::HashSet::new();

        for payload in 0..rng.gen_range(0u64..250) {
            match rng.gen_range(0u32..8) {
                // schedule (weighted: half of all ops)
                0..=3 => {
                    let delta = SimDuration::from_nanos(rng.gen_range(0u64..500));
                    let at = queue.now() + delta;
                    let q_id = queue.schedule_at(at, payload);
                    let b_id = base.schedule_at(at, payload);
                    assert!(
                        ever_issued.insert(q_id),
                        "EventId reused across generations: {q_id:?}"
                    );
                    ids.push((q_id, b_id));
                }
                // cancel a random id from the whole history
                4 => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..ids.len());
                    let (q_id, b_id) = ids[i];
                    assert_eq!(queue.cancel(q_id), base.cancel(b_id));
                }
                // pop
                5..=6 => {
                    assert_eq!(queue.pop(), base.pop());
                }
                // shift (a stop-the-world pause)
                _ => {
                    let pause = SimDuration::from_nanos(rng.gen_range(0u64..300));
                    queue.shift_all(pause);
                    base.shift_all(pause);
                }
            }
            assert_eq!(queue.now(), base.now());
            assert_eq!(queue.len(), base.len());
            assert_eq!(queue.is_empty(), base.is_empty());
            assert_eq!(queue.peek_time(), base.peek_time());
            assert_eq!(queue.scheduled_total(), base.scheduled_total());
            assert_eq!(queue.popped_total(), base.popped_total());
        }

        // Drain to the end: the remaining event sequences must be
        // identical, including FIFO ties.
        loop {
            let (q, b) = (queue.pop(), base.pop());
            assert_eq!(q, b);
            if q.is_none() {
                break;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Histogram / CDF invariants
// ---------------------------------------------------------------------

#[test]
fn histogram_fraction_below_is_exact_at_powers_of_two() {
    for_cases(256, |rng| {
        let values = sample_vec(rng, 1_000_000, 1..500);
        let shift = rng.gen_range(1u32..20);
        let hist: LogHistogram = values.iter().copied().collect();
        let threshold = 1u64 << shift;
        let exact = values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64;
        // Bucket 0 holds {0, 1} jointly, so thresholds >= 2 are exact.
        assert!(
            (hist.fraction_below(threshold) - exact).abs() < 1e-9,
            "threshold {threshold}: {} vs {exact}",
            hist.fraction_below(threshold)
        );
    });
}

#[test]
fn histogram_merge_equals_pooled() {
    for_cases(256, |rng| {
        let a = sample_vec(rng, 1_000_000, 0..200);
        let b = sample_vec(rng, 1_000_000, 0..200);
        let mut merged: LogHistogram = a.iter().copied().collect();
        merged.merge(&b.iter().copied().collect());
        let pooled: LogHistogram = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, pooled);
    });
}

#[test]
fn histogram_stats_match_exact() {
    for_cases(256, |rng| {
        let values = sample_vec(rng, 1_000_000, 1..300);
        let hist: LogHistogram = values.iter().copied().collect();
        assert_eq!(hist.count(), values.len() as u64);
        assert_eq!(hist.min(), values.iter().copied().min());
        assert_eq!(hist.max(), values.iter().copied().max());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((hist.mean().unwrap() - mean).abs() < 1e-6);
    });
}

#[test]
fn cdf_quantile_and_fraction_are_consistent() {
    for_cases(256, |rng| {
        let values = sample_vec(rng, 1_000_000, 1..300);
        let q = rng.gen_range(0.0f64..1.0);
        let cdf = Cdf::from_samples(values);
        let v = cdf.quantile(q).unwrap();
        // At least q of the mass lies at or below the q-quantile.
        assert!(cdf.fraction_at_most(v) >= q - 1e-9);
        // CDF is monotone.
        assert!(cdf.fraction_at_most(v) >= cdf.fraction_below(v));
    });
}

#[test]
fn cdf_ks_distance_is_a_metric_ish() {
    for_cases(256, |rng| {
        let a = sample_vec(rng, 1000, 1..100);
        let b = sample_vec(rng, 1000, 1..100);
        let ca = Cdf::from_samples(a);
        let cb = Cdf::from_samples(b);
        let d = ca.ks_distance(&cb);
        assert!((0.0..=1.0).contains(&d));
        assert!((ca.ks_distance(&ca)).abs() < 1e-12);
        assert!((d - cb.ks_distance(&ca)).abs() < 1e-12, "symmetry");
    });
}

// ---------------------------------------------------------------------
// Monitor mutual exclusion under random schedules
// ---------------------------------------------------------------------

#[test]
fn monitors_preserve_mutual_exclusion_and_fifo() {
    for_cases(128, |rng| {
        use scalesim::sched::ThreadId;
        use scalesim::sync::{AcquireOutcome, LockTable};

        let mut locks = LockTable::new();
        let m = locks.create("prop");
        let mut holder: Option<usize> = None;
        let mut waiting: Vec<usize> = Vec::new();
        let mut t = 0u64;

        for _ in 0..rng.gen_range(1usize..300) {
            let thread = rng.gen_range(0usize..6);
            let wants_acquire: bool = rng.gen_bool(0.5);
            t += 1;
            let now = SimTime::from_nanos(t);
            if wants_acquire {
                // skip threads already involved
                if holder == Some(thread) || waiting.contains(&thread) {
                    continue;
                }
                match locks.acquire(m, ThreadId::new(thread), now).unwrap() {
                    AcquireOutcome::Acquired => {
                        assert!(holder.is_none(), "mutual exclusion violated");
                        holder = Some(thread);
                    }
                    AcquireOutcome::Contended => {
                        assert!(holder.is_some());
                        waiting.push(thread);
                    }
                }
            } else if let Some(h) = holder {
                let grant = locks.release(m, ThreadId::new(h), now).unwrap();
                match grant {
                    None => {
                        assert!(waiting.is_empty(), "grant skipped a waiter");
                        holder = None;
                    }
                    Some(g) => {
                        // FIFO: the longest waiter gets the monitor.
                        assert_eq!(g.next, ThreadId::new(waiting.remove(0)));
                        holder = Some(g.next.index());
                    }
                }
            }
        }

        let stats = locks.stats(m);
        assert!(stats.acquisitions >= stats.contentions.saturating_sub(waiting.len() as u64));
    });
}

// ---------------------------------------------------------------------
// Heap conservation under random alloc/kill interleavings
// ---------------------------------------------------------------------

#[test]
fn heap_occupancy_is_conserved() {
    for_cases(64, |rng| {
        use scalesim::heap::{AllocResult, Heap, HeapConfig, NurseryLayout};
        use scalesim::sched::ThreadId;

        let mut heap = Heap::new(HeapConfig::new(3 << 20, 1.0 / 3.0, NurseryLayout::Shared));
        let mut live: Vec<(scalesim::heap::ObjectId, u64)> = Vec::new();
        let mut allocated = 0u64;

        for _ in 0..rng.gen_range(1usize..300) {
            let size = rng.gen_range(1u64..2000);
            let kill_one: bool = rng.gen_bool(0.5);
            if kill_one && !live.is_empty() {
                let (obj, sz) = live.swap_remove(live.len() / 2);
                let death = heap.kill(obj);
                assert_eq!(death.size, sz);
                assert!(death.lifespan <= allocated);
            } else {
                match heap.alloc(ThreadId::new(0), size) {
                    AllocResult::Ok(obj) => {
                        live.push((obj, size));
                        allocated += size;
                    }
                    AllocResult::NurseryFull { region } => {
                        // reclaim dead space the way a collection would
                        heap.reset_region_to_survivors(region);
                    }
                }
            }
            // occupancy >= live bytes (dead space may linger)
            let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
            assert!(heap.region_used(0) >= live_bytes);
            assert_eq!(heap.clock(), allocated);
            assert_eq!(heap.live_objects(), live.len());
        }

        heap.reset_region_to_survivors(0);
        let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
        assert_eq!(heap.region_used(0), live_bytes);
    });
}

// ---------------------------------------------------------------------
// Whole-simulation properties at tiny scale
// ---------------------------------------------------------------------

#[test]
fn any_small_run_conserves_work_and_objects() {
    for_cases(12, |rng| {
        use scalesim::runtime::{Jvm, JvmConfig};
        use scalesim::workloads::{all_apps, AppModel};

        let app_idx = rng.gen_range(0usize..6);
        let threads = rng.gen_range(1usize..10);
        let seed = rng.gen_range(0u64..1000);

        let app = all_apps().swap_remove(app_idx).scaled(0.002);
        let report = Jvm::new(
            JvmConfig::builder()
                .threads(threads)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap();
        assert_eq!(report.total_items(), app.total_items());
        assert_eq!(
            report.trace.allocations(),
            report.trace.deaths() + report.trace.censored()
        );
        assert!(report.locks.total.acquisitions >= report.locks.total.contentions);
        assert_eq!(report.mutator_wall() + report.gc_time, report.wall_time);
    });
}

// ---------------------------------------------------------------------
// CPU scheduler vs. a reference model
// ---------------------------------------------------------------------

#[test]
fn scheduler_matches_reference_model() {
    for_cases(128, |rng| {
        use scalesim::machine::CoreId;
        use scalesim::sched::{BlockReason, CpuScheduler, QuantumOutcome, SchedPolicy, ThreadId};
        use scalesim::simkit::SimDuration;

        #[derive(Clone, Copy, PartialEq, Debug)]
        enum M {
            New,
            Ready,
            Running,
            Blocked,
            Dead,
        }

        let cores = rng.gen_range(1usize..5);
        let mut sched = CpuScheduler::new(
            (0..cores).map(CoreId::new).collect(),
            SimDuration::from_millis(1),
            SchedPolicy::Fair,
        );
        // register 8 threads
        let tids: Vec<ThreadId> = (0..8).map(|_| sched.register(SimTime::ZERO)).collect();
        let mut model = [M::New; 8];
        let mut ready: Vec<usize> = Vec::new();
        let mut on_core: Vec<Option<usize>> = vec![None; cores];
        let mut t = 0u64;

        for _ in 0..rng.gen_range(1usize..250) {
            let i = rng.gen_range(0usize..8);
            let action = rng.gen_range(0u8..5);
            t += 1;
            let now = SimTime::from_nanos(t);
            let tid = tids[i];
            match action {
                // start
                0 => {
                    if model[i] == M::New {
                        sched.start(tid, now);
                        model[i] = M::Ready;
                        ready.push(i);
                    }
                }
                // dispatch
                1 => {
                    let placed = sched.dispatch(now);
                    for d in &placed {
                        let idx = d.thread.index();
                        assert_eq!(ready.remove(0), idx, "dispatch order");
                        model[idx] = M::Running;
                        let slot = on_core
                            .iter()
                            .position(Option::is_none)
                            .expect("model has a free core");
                        on_core[slot] = Some(idx);
                    }
                    // a free core and a ready thread cannot coexist after dispatch
                    let free = on_core.iter().filter(|c| c.is_none()).count();
                    assert!(free == 0 || ready.is_empty());
                }
                // block
                2 => {
                    if model[i] == M::Running {
                        sched.block(tid, now, BlockReason::Monitor);
                        model[i] = M::Blocked;
                        let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                        on_core[slot] = None;
                    }
                }
                // unblock
                3 => {
                    if model[i] == M::Blocked {
                        sched.unblock(tid, now);
                        model[i] = M::Ready;
                        ready.push(i);
                    }
                }
                // quantum expiry / terminate
                _ => {
                    if model[i] == M::Running {
                        let outcome = sched.quantum_expired(tid, now);
                        if ready.is_empty() {
                            assert_eq!(outcome, QuantumOutcome::Continued);
                        } else {
                            assert_eq!(outcome, QuantumOutcome::Preempted);
                            model[i] = M::Ready;
                            ready.push(i);
                            let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                            on_core[slot] = None;
                        }
                    } else if model[i] != M::Dead && model[i] != M::New {
                        sched.terminate(tid, now);
                        if model[i] == M::Running {
                            let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                            on_core[slot] = None;
                        }
                        ready.retain(|&r| r != i);
                        model[i] = M::Dead;
                    }
                }
            }

            // cross-check aggregate state after every op
            assert_eq!(
                sched.running_count(),
                on_core.iter().filter(|c| c.is_some()).count()
            );
            assert_eq!(sched.runnable_count(), ready.len());
            for (k, &tid) in tids.iter().enumerate() {
                use scalesim::sched::ThreadState;
                let expected_running = matches!(model[k], M::Running);
                assert_eq!(sched.core_of(tid).is_some(), expected_running);
                assert_eq!(
                    matches!(sched.state(tid), ThreadState::Terminated),
                    model[k] == M::Dead
                );
            }
        }
    });
}

// ---------------------------------------------------------------------
// Work-item generator invariants
// ---------------------------------------------------------------------

#[test]
fn generated_items_are_always_well_formed() {
    for_cases(64, |rng| {
        use scalesim::workloads::{all_apps, AppModel, Step};

        let app_idx = rng.gen_range(0usize..6);
        let seed = rng.gen_range(0u64..10_000);
        let app = all_apps().swap_remove(app_idx);
        let mut item_rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            // WorkItem::new() inside the generator validates slot
            // discipline; here we check the coarser contracts.
            let item = app.make_item(&mut item_rng);
            assert!(!item.is_empty());
            assert!(item.alloc_bytes() > 0);
            assert!(item.cpu_time().as_nanos() > 0);
            // every critical references a declared class
            for step in item.steps() {
                if let Step::Critical { class, .. } = step {
                    assert!(class.0 < app.lock_classes().len());
                }
            }
            // compute time lands within the spec's target plus hold times
            let max_target = app.spec().compute_ns.1
                + app
                    .spec()
                    .criticals
                    .iter()
                    .map(|c| c.held_ns.1)
                    .sum::<u64>();
            assert!(item.cpu_time().as_nanos() <= max_target + 1);
        }
    });
}

// ---------------------------------------------------------------------
// Chaos determinism
// ---------------------------------------------------------------------

/// A chaos run is a pure function of `(config, seed, ChaosPlan)`: the
/// same triple reproduces the same result bit-for-bit, whether that
/// result is a clean report, a truncation, or a detected violation.
#[test]
fn chaos_runs_are_a_pure_function_of_config_and_seed() {
    for_cases(6, |rng| {
        use scalesim::runtime::{Jvm, JvmConfig};
        use scalesim::simkit::{ChaosConfig, RunBudget};
        use scalesim::workloads::all_apps;

        let app_idx = rng.gen_range(0usize..6);
        let threads = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0u64..1000);
        let chaos = ChaosConfig {
            drop_wakeup_period: rng.gen_range(0u64..3) * 64,
            spurious_wakeup_period: rng.gen_range(0u64..3) * 64,
            gc_stall_period: rng.gen_range(0u64..4),
            gc_stall_factor: 0.1,
            ..ChaosConfig::default()
        };
        let budget = RunBudget {
            max_events: 2_000_000,
            max_sim_time: None,
            max_host_ms: None,
            watchdog_ms: None,
        };
        let app = all_apps().swap_remove(app_idx).scaled(0.002);
        let run = || {
            let cfg = JvmConfig::builder()
                .threads(threads)
                .seed(seed)
                .chaos(chaos)
                .budget(budget)
                .build()
                .unwrap();
            format!("{:?}", Jvm::new(cfg).run(&app))
        };
        assert_eq!(run(), run());
    });
}

/// With every chaos class off, the chaos/budget/monitor plumbing must be
/// invisible: explicit all-off knobs and disabled monitors produce a
/// report byte-identical to the default configuration's, and the default
/// run at the pinned paper seed still matches its golden totals.
#[test]
fn chaos_off_is_byte_identical_to_the_plain_run() {
    use scalesim::runtime::{Jvm, JvmConfig, RunOutcome};
    use scalesim::simkit::ChaosConfig;
    use scalesim::workloads::{xalan, AppModel};

    let app = xalan().scaled(0.01);
    let plain = Jvm::new(JvmConfig::builder().threads(4).seed(42).build().unwrap())
        .run(&app)
        .unwrap();
    let explicit = Jvm::new(
        JvmConfig::builder()
            .threads(4)
            .seed(42)
            .chaos(ChaosConfig::default())
            .monitors(false)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    assert_eq!(format!("{plain:?}"), format!("{explicit:?}"));

    // Golden totals at the pinned seed: a chaos-layer change that
    // perturbs clean runs shows up here as a diff, not as silent drift.
    assert_eq!(plain.outcome, RunOutcome::Ok);
    assert_eq!(plain.total_items(), app.total_items());
    assert_eq!(plain.events_processed, 9512);
    assert_eq!(plain.wall_time.as_nanos(), 13_439_563);
}

// ---------------------------------------------------------------------
// Timeline tracing
// ---------------------------------------------------------------------

/// Traced runs are well-formed for arbitrary small configurations: the
/// merged timeline is time-ordered, spans never end before they start,
/// the always-on counters agree with the report totals, and rerunning
/// the same `(config, seed)` reproduces the timeline exactly.
#[test]
fn traced_runs_are_ordered_and_agree_with_counters() {
    for_cases(6, |rng| {
        use scalesim::runtime::{Jvm, JvmConfig};
        use scalesim::trace::{CounterId, TraceConfig};
        use scalesim::workloads::all_apps;

        let app_idx = rng.gen_range(0usize..6);
        let threads = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0u64..1000);
        let app = all_apps().swap_remove(app_idx).scaled(0.002);
        let run = || {
            Jvm::new(
                JvmConfig::builder()
                    .threads(threads)
                    .seed(seed)
                    .trace(TraceConfig::on())
                    .build()
                    .unwrap(),
            )
            .run(&app)
            .unwrap()
        };
        let report = run();

        let mut prev = 0u64;
        for ev in report.timeline.events() {
            assert!(ev.at.as_nanos() >= prev, "merged timeline out of order");
            prev = ev.at.as_nanos();
            assert!(ev.end() >= ev.at, "span ends before it starts");
        }
        assert_eq!(
            report.counters.get(CounterId::EventsProcessed),
            report.events_processed
        );
        assert_eq!(
            report.counters.get(CounterId::Allocations),
            report.trace.allocations()
        );
        assert_eq!(report.timeline, run().timeline);
    });
}

/// The checkpoint snapshot layer is lossless: any small run — clean,
/// truncated, or chaos-perturbed, with or without full object retention —
/// survives `report_to_json` → text → parse → `report_from_json` with a
/// `Debug`-identical report, which is exactly the property the durable
/// sweep checkpoints rely on to verify fingerprints on resume.
#[test]
fn snapshot_round_trip_preserves_any_small_report() {
    for_cases(8, |rng| {
        use scalesim::objtrace::Retention;
        use scalesim::runtime::{report_from_json, report_to_json, JsonValue, Jvm, JvmConfig};
        use scalesim::simkit::{ChaosConfig, RunBudget};
        use scalesim::workloads::all_apps;

        let app_idx = rng.gen_range(0usize..6);
        let threads = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..10_000);
        let chaos = ChaosConfig {
            drop_wakeup_period: rng.gen_range(0u64..2) * 128,
            gc_stall_period: rng.gen_range(0u64..3),
            gc_stall_factor: 0.25,
            ..ChaosConfig::default()
        };
        let budget = RunBudget {
            max_events: if rng.gen_bool(0.3) { 10_000 } else { 2_000_000 },
            max_sim_time: None,
            max_host_ms: None,
            watchdog_ms: None,
        };
        let retention = if rng.gen_bool(0.5) {
            Retention::Full
        } else {
            Retention::HistogramOnly
        };
        let app = all_apps().swap_remove(app_idx).scaled(0.002);
        let report = Jvm::new(
            JvmConfig::builder()
                .threads(threads)
                .seed(seed)
                .chaos(chaos)
                .budget(budget)
                .retention(retention)
                .monitors(false)
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap();

        let text = report_to_json(&report).to_string();
        let back = report_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
    });
}

// ---------------------------------------------------------------------
// USL fitting
// ---------------------------------------------------------------------

/// The USL fitter inverts its own model exactly: for random positive
/// (λ, σ, κ) and a noiseless curve sampled from
/// `X(n) = λn / (1 + σ(n−1) + κn(n−1))`, the recovered parameters match
/// to within numerical round-off.
#[test]
fn usl_fit_recovers_exact_parameters_from_clean_curves() {
    use scalesim::analytics::fit_usl;

    for_cases(256, |rng| {
        let lambda = rng.gen_range(1.0..10_000.0);
        let sigma = rng.gen_range(0.0..0.8);
        let kappa = rng.gen_range(0.0..0.02);
        let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0]
            .iter()
            .map(|&n| {
                let x = lambda * n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0));
                (n, x)
            })
            .collect();
        let fit = fit_usl(&points).expect("clean curve must fit");
        assert!(
            (fit.lambda - lambda).abs() / lambda < 1e-6,
            "lambda {lambda} -> {}",
            fit.lambda
        );
        assert!(
            (fit.sigma - sigma).abs() < 1e-6,
            "sigma {sigma} -> {}",
            fit.sigma
        );
        assert!(
            (fit.kappa - kappa).abs() < 1e-6,
            "kappa {kappa} -> {}",
            fit.kappa
        );
        assert!(fit.rms_residual < 1e-9, "residual {}", fit.rms_residual);
    });
}

/// Recovery degrades gracefully under measurement noise: with every
/// throughput sample perturbed by up to ±1%, the recovered contention
/// and coherency coefficients stay close to the generating values, and
/// the residual reflects the injected noise instead of vanishing.
#[test]
fn usl_fit_recovers_parameters_from_noisy_curves() {
    use scalesim::analytics::fit_usl;

    for_cases(128, |rng| {
        let lambda = rng.gen_range(10.0..1000.0);
        let sigma = rng.gen_range(0.0..0.5);
        let kappa = rng.gen_range(0.0..0.01);
        let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0]
            .iter()
            .map(|&n| {
                let x = lambda * n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0));
                (n, x * (1.0 + rng.gen_range(-0.01..0.01)))
            })
            .collect();
        let fit = fit_usl(&points).expect("noisy curve must fit");
        assert!(
            (fit.lambda - lambda).abs() / lambda < 0.1,
            "lambda {lambda} -> {}",
            fit.lambda
        );
        assert!(
            (fit.sigma - sigma).abs() < 0.05,
            "sigma {sigma} -> {} (lambda {lambda}, kappa {kappa})",
            fit.sigma
        );
        assert!(
            (fit.kappa - kappa).abs() < 0.005,
            "kappa {kappa} -> {} (lambda {lambda}, sigma {sigma})",
            fit.kappa
        );
        assert!(fit.rms_residual < 0.05, "residual {}", fit.rms_residual);
    });
}
