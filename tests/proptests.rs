//! Property-based tests over the core data structures and, at small
//! scale, whole simulations.

use proptest::prelude::*;

use scalesim::metrics::{Cdf, LogHistogram};
use scalesim::simkit::{EventQueue, SimTime};

// ---------------------------------------------------------------------
// Event queue vs. a reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum QueueOp {
    Schedule(u64),
    Cancel(usize),
    Pop,
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..1000).prop_map(QueueOp::Schedule),
            (0usize..64).prop_map(QueueOp::Cancel),
            Just(QueueOp::Pop),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_matches_reference_model(ops in queue_ops()) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        // Reference: (absolute time, insertion order, payload), popped in
        // lexicographic order.
        let mut model: Vec<(u64, usize, usize)> = Vec::new();
        let mut issued = Vec::new();
        let mut now = 0u64;
        let mut next_payload = 0usize;

        for op in ops {
            match op {
                QueueOp::Schedule(delta) => {
                    let at = now + delta;
                    let id = queue.schedule_at(SimTime::from_nanos(at), next_payload);
                    model.push((at, issued.len(), next_payload));
                    issued.push(Some(id));
                    next_payload += 1;
                }
                QueueOp::Cancel(i) => {
                    if let Some(slot) = issued.get_mut(i) {
                        if let Some(id) = slot.take() {
                            let was_pending =
                                model.iter().any(|&(_, ord, _)| ord == i);
                            prop_assert_eq!(queue.cancel(id), was_pending);
                            model.retain(|&(_, ord, _)| ord != i);
                        }
                    }
                }
                QueueOp::Pop => {
                    model.sort_unstable();
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    let got = queue.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((at, _, payload)), Some((t, p))) => {
                            prop_assert_eq!(t, SimTime::from_nanos(at));
                            prop_assert_eq!(p, payload);
                            now = at;
                        }
                        (e, g) => prop_assert!(false, "model {e:?} vs queue {g:?}"),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// Histogram / CDF invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_fraction_below_is_exact_at_powers_of_two(
        values in prop::collection::vec(0u64..1_000_000, 1..500),
        shift in 1u32..20,
    ) {
        let hist: LogHistogram = values.iter().copied().collect();
        let threshold = 1u64 << shift;
        let exact = values.iter().filter(|&&v| v < threshold).count() as f64
            / values.len() as f64;
        // Bucket 0 holds {0, 1} jointly, so thresholds >= 2 are exact.
        prop_assert!((hist.fraction_below(threshold) - exact).abs() < 1e-9,
            "threshold {threshold}: {} vs {exact}", hist.fraction_below(threshold));
    }

    #[test]
    fn histogram_merge_equals_pooled(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut merged: LogHistogram = a.iter().copied().collect();
        merged.merge(&b.iter().copied().collect());
        let pooled: LogHistogram = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, pooled);
    }

    #[test]
    fn histogram_stats_match_exact(
        values in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let hist: LogHistogram = values.iter().copied().collect();
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.min(), values.iter().copied().min());
        prop_assert_eq!(hist.max(), values.iter().copied().max());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((hist.mean().unwrap() - mean).abs() < 1e-6);
    }

    #[test]
    fn cdf_quantile_and_fraction_are_consistent(
        values in prop::collection::vec(0u64..1_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let cdf = Cdf::from_samples(values.clone());
        let v = cdf.quantile(q).unwrap();
        // At least q of the mass lies at or below the q-quantile.
        prop_assert!(cdf.fraction_at_most(v) >= q - 1e-9);
        // CDF is monotone.
        prop_assert!(cdf.fraction_at_most(v) >= cdf.fraction_below(v));
    }

    #[test]
    fn cdf_ks_distance_is_a_metric_ish(
        a in prop::collection::vec(0u64..1000, 1..100),
        b in prop::collection::vec(0u64..1000, 1..100),
    ) {
        let ca = Cdf::from_samples(a);
        let cb = Cdf::from_samples(b);
        let d = ca.ks_distance(&cb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((ca.ks_distance(&ca)).abs() < 1e-12);
        prop_assert!((d - cb.ks_distance(&ca)).abs() < 1e-12, "symmetry");
    }
}

// ---------------------------------------------------------------------
// Monitor mutual exclusion under random schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn monitors_preserve_mutual_exclusion_and_fifo(
        ops in prop::collection::vec((0usize..6, prop::bool::ANY), 1..300),
    ) {
        use scalesim::sched::ThreadId;
        use scalesim::sync::{AcquireOutcome, LockTable};

        let mut locks = LockTable::new();
        let m = locks.create("prop");
        let mut holder: Option<usize> = None;
        let mut waiting: Vec<usize> = Vec::new();
        let mut t = 0u64;

        for (thread, wants_acquire) in ops {
            t += 1;
            let now = SimTime::from_nanos(t);
            if wants_acquire {
                // skip threads already involved
                if holder == Some(thread) || waiting.contains(&thread) {
                    continue;
                }
                match locks.acquire(m, ThreadId::new(thread), now) {
                    AcquireOutcome::Acquired => {
                        prop_assert!(holder.is_none(), "mutual exclusion violated");
                        holder = Some(thread);
                    }
                    AcquireOutcome::Contended => {
                        prop_assert!(holder.is_some());
                        waiting.push(thread);
                    }
                }
            } else if let Some(h) = holder {
                let grant = locks.release(m, ThreadId::new(h), now);
                match grant {
                    None => {
                        prop_assert!(waiting.is_empty(), "grant skipped a waiter");
                        holder = None;
                    }
                    Some(g) => {
                        // FIFO: the longest waiter gets the monitor.
                        prop_assert_eq!(g.next, ThreadId::new(waiting.remove(0)));
                        holder = Some(g.next.index());
                    }
                }
            }
        }

        let stats = locks.stats(m);
        prop_assert!(stats.acquisitions >= stats.contentions.saturating_sub(waiting.len() as u64));
    }
}

// ---------------------------------------------------------------------
// Heap conservation under random alloc/kill interleavings
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_occupancy_is_conserved(
        ops in prop::collection::vec((1u64..2000, prop::bool::ANY), 1..300),
    ) {
        use scalesim::heap::{AllocResult, Heap, HeapConfig, NurseryLayout};
        use scalesim::sched::ThreadId;

        let mut heap = Heap::new(HeapConfig::new(3 << 20, 1.0 / 3.0, NurseryLayout::Shared));
        let mut live: Vec<(scalesim::heap::ObjectId, u64)> = Vec::new();
        let mut allocated = 0u64;

        for (size, kill_one) in ops {
            if kill_one && !live.is_empty() {
                let (obj, sz) = live.swap_remove(live.len() / 2);
                let death = heap.kill(obj);
                prop_assert_eq!(death.size, sz);
                prop_assert!(death.lifespan <= allocated);
            } else {
                match heap.alloc(ThreadId::new(0), size) {
                    AllocResult::Ok(obj) => {
                        live.push((obj, size));
                        allocated += size;
                    }
                    AllocResult::NurseryFull { region } => {
                        // reclaim dead space the way a collection would
                        heap.reset_region_to_survivors(region);
                    }
                }
            }
            // occupancy >= live bytes (dead space may linger)
            let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert!(heap.region_used(0) >= live_bytes);
            prop_assert_eq!(heap.clock(), allocated);
            prop_assert_eq!(heap.live_objects(), live.len());
        }

        heap.reset_region_to_survivors(0);
        let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(heap.region_used(0), live_bytes);
    }
}

// ---------------------------------------------------------------------
// Whole-simulation properties at tiny scale
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_small_run_conserves_work_and_objects(
        app_idx in 0usize..6,
        threads in 1usize..10,
        seed in 0u64..1000,
    ) {
        use scalesim::runtime::{Jvm, JvmConfig};
        use scalesim::workloads::{all_apps, AppModel};

        let app = all_apps().swap_remove(app_idx).scaled(0.002);
        let report = Jvm::new(JvmConfig::builder().threads(threads).seed(seed).build())
            .run(&app);
        prop_assert_eq!(report.total_items(), app.total_items());
        prop_assert_eq!(
            report.trace.allocations(),
            report.trace.deaths() + report.trace.censored()
        );
        prop_assert!(report.locks.total.acquisitions >= report.locks.total.contentions);
        prop_assert_eq!(report.mutator_wall() + report.gc_time, report.wall_time);
    }
}

// ---------------------------------------------------------------------
// CPU scheduler vs. a reference model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scheduler_matches_reference_model(
        cores in 1usize..5,
        ops in prop::collection::vec((0usize..8, 0u8..5), 1..250),
    ) {
        use scalesim::machine::CoreId;
        use scalesim::sched::{BlockReason, CpuScheduler, QuantumOutcome, SchedPolicy, ThreadId};
        use scalesim::simkit::SimDuration;

        #[derive(Clone, Copy, PartialEq, Debug)]
        enum M { New, Ready, Running, Blocked, Dead }

        let mut sched = CpuScheduler::new(
            (0..cores).map(CoreId::new).collect(),
            SimDuration::from_millis(1),
            SchedPolicy::Fair,
        );
        // register 8 threads
        let tids: Vec<ThreadId> = (0..8).map(|_| sched.register(SimTime::ZERO)).collect();
        let mut model = [M::New; 8];
        let mut ready: Vec<usize> = Vec::new();
        let mut on_core: Vec<Option<usize>> = vec![None; cores];
        let mut t = 0u64;

        for (i, action) in ops {
            t += 1;
            let now = SimTime::from_nanos(t);
            let tid = tids[i];
            match action {
                // start
                0 => {
                    if model[i] == M::New {
                        sched.start(tid, now);
                        model[i] = M::Ready;
                        ready.push(i);
                    }
                }
                // dispatch
                1 => {
                    let placed = sched.dispatch(now);
                    for d in &placed {
                        let idx = d.thread.index();
                        prop_assert_eq!(ready.remove(0), idx, "dispatch order");
                        model[idx] = M::Running;
                        let slot = on_core.iter().position(Option::is_none)
                            .expect("model has a free core");
                        on_core[slot] = Some(idx);
                    }
                    // a free core and a ready thread cannot coexist after dispatch
                    let free = on_core.iter().filter(|c| c.is_none()).count();
                    prop_assert!(free == 0 || ready.is_empty());
                }
                // block
                2 => {
                    if model[i] == M::Running {
                        sched.block(tid, now, BlockReason::Monitor);
                        model[i] = M::Blocked;
                        let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                        on_core[slot] = None;
                    }
                }
                // unblock
                3 => {
                    if model[i] == M::Blocked {
                        sched.unblock(tid, now);
                        model[i] = M::Ready;
                        ready.push(i);
                    }
                }
                // quantum expiry / terminate
                _ => {
                    if model[i] == M::Running {
                        let outcome = sched.quantum_expired(tid, now);
                        if ready.is_empty() {
                            prop_assert_eq!(outcome, QuantumOutcome::Continued);
                        } else {
                            prop_assert_eq!(outcome, QuantumOutcome::Preempted);
                            model[i] = M::Ready;
                            ready.push(i);
                            let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                            on_core[slot] = None;
                        }
                    } else if model[i] != M::Dead && model[i] != M::New {
                        sched.terminate(tid, now);
                        if model[i] == M::Running {
                            let slot = on_core.iter().position(|&c| c == Some(i)).expect("on core");
                            on_core[slot] = None;
                        }
                        ready.retain(|&r| r != i);
                        model[i] = M::Dead;
                    }
                }
            }

            // cross-check aggregate state after every op
            prop_assert_eq!(sched.running_count(),
                on_core.iter().filter(|c| c.is_some()).count());
            prop_assert_eq!(sched.runnable_count(), ready.len());
            for (k, &tid) in tids.iter().enumerate() {
                use scalesim::sched::ThreadState;
                let expected_running = matches!(model[k], M::Running);
                prop_assert_eq!(sched.core_of(tid).is_some(), expected_running);
                prop_assert_eq!(
                    matches!(sched.state(tid), ThreadState::Terminated),
                    model[k] == M::Dead
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Work-item generator invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_items_are_always_well_formed(
        app_idx in 0usize..6,
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        use scalesim::workloads::{all_apps, AppModel, Step};

        let app = all_apps().swap_remove(app_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            // WorkItem::new() inside the generator validates slot
            // discipline; here we check the coarser contracts.
            let item = app.make_item(&mut rng);
            prop_assert!(!item.is_empty());
            prop_assert!(item.alloc_bytes() > 0);
            prop_assert!(item.cpu_time().as_nanos() > 0);
            // every critical references a declared class
            for step in item.steps() {
                if let Step::Critical { class, .. } = step {
                    prop_assert!(class.0 < app.lock_classes().len());
                }
            }
            // compute time lands within the spec's target plus hold times
            let max_target = app.spec().compute_ns.1
                + app.spec().criticals.iter().map(|c| c.held_ns.1).sum::<u64>();
            prop_assert!(item.cpu_time().as_nanos() <= max_target + 1);
        }
    }
}
