//! Shape tests for Figures 1a–1d: the qualitative claims of the paper's
//! §III-A and §III-B must hold in the reproduction.

use scalesim::experiments::{run_fig1_locks, run_fig1c, run_fig1d, ExpParams};

fn params() -> ExpParams {
    ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![4, 16, 48])
}

#[test]
fn fig1a_scalable_lock_acquisitions_grow_with_threads() {
    let fig1 = run_fig1_locks(&params()).unwrap();
    for app in ["sunflow", "lusearch", "xalan"] {
        let s = fig1.acquisitions_of(app).expect("series exists");
        assert!(s.is_increasing(), "{app} acquisitions not increasing: {s}");
        let growth = s.growth_ratio().expect("nonzero base");
        assert!(
            growth > 1.15,
            "{app} acquisitions grew only {growth:.2}x from 4 to 48 threads"
        );
    }
}

#[test]
fn fig1a_non_scalable_lock_acquisitions_stay_flat() {
    let fig1 = run_fig1_locks(&params()).unwrap();
    for app in ["h2", "eclipse", "jython"] {
        let s = fig1.acquisitions_of(app).expect("series exists");
        let growth = s.growth_ratio().expect("nonzero base");
        assert!(
            (0.9..=1.1).contains(&growth),
            "{app} acquisitions changed {growth:.2}x — should be flat"
        );
    }
}

#[test]
fn fig1b_scalable_contention_grows_sharply() {
    let fig1 = run_fig1_locks(&params()).unwrap();
    for app in ["sunflow", "lusearch", "xalan"] {
        let s = fig1.contentions_of(app).expect("series exists");
        assert!(s.is_increasing(), "{app} contentions not increasing: {s}");
        let growth = s.growth_ratio().expect("nonzero base");
        assert!(
            growth > 3.0,
            "{app} contentions grew only {growth:.2}x from 4 to 48 threads"
        );
    }
}

#[test]
fn fig1b_non_scalable_contention_is_insensitive_to_threads() {
    let fig1 = run_fig1_locks(&params()).unwrap();
    for app in ["h2", "jython", "eclipse"] {
        let s = fig1.contentions_of(app).expect("series exists");
        let growth = s.growth_ratio().unwrap_or(1.0);
        assert!(
            growth < 1.5,
            "{app} contentions grew {growth:.2}x — should be near-flat"
        );
    }
}

#[test]
fn fig1b_scalable_apps_out_contend_despite_scaling_better() {
    // The paper's headline: apps that scale BETTER may have MORE
    // contention instances at high thread counts.
    let fig1 = run_fig1_locks(&params()).unwrap();
    let xalan = fig1
        .contentions_of("xalan")
        .expect("xalan")
        .last_y()
        .unwrap();
    let eclipse = fig1
        .contentions_of("eclipse")
        .expect("eclipse")
        .last_y()
        .unwrap();
    assert!(
        xalan > eclipse,
        "xalan ({xalan}) should contend more than eclipse ({eclipse}) at 48T"
    );
}

#[test]
fn fig1d_xalan_lifespans_stretch_with_threads() {
    let fig1d = run_fig1d(&params()).unwrap();
    let at4 = fig1d.frac_below_1k(4).expect("T=4 swept");
    let at48 = fig1d.frac_below_1k(48).expect("T=48 swept");
    // Paper: >80% below 1KB at 4 threads, ~50% at 48.
    assert!(at4 > 0.7, "xalan at 4T: {at4:.2} of objects below 1KiB");
    assert!(
        at48 < 0.6,
        "xalan at 48T: {at48:.2} should drop toward ~0.5"
    );
    assert!(
        at4 - at48 > 0.2,
        "xalan CDF should shift by >20 points, got {at4:.2} -> {at48:.2}"
    );
}

#[test]
fn fig1c_eclipse_lifespans_are_insensitive_to_threads() {
    let fig1c = run_fig1c(&params()).unwrap();
    let shift = fig1c.max_shift();
    assert!(
        shift < 0.05,
        "eclipse CDF shifted {shift:.3} between 4 and 48 threads — paper says almost none"
    );
}
