//! Shape tests for the §IV future-work ablations.

use scalesim::experiments::{run_biased_sched, run_heaplets, ExpParams};

fn params() -> ExpParams {
    ExpParams::paper().with_scale(0.1).with_threads(vec![48])
}

#[test]
fn biased_scheduling_reduces_lifetime_interference() {
    let study = run_biased_sched("xalan", &params()).unwrap();
    let baseline = study.row("baseline", 48).expect("baseline row");
    let biased = study.row("biased-4", 48).expect("biased-4 row");
    assert!(
        biased.frac_below_1k > baseline.frac_below_1k + 0.1,
        "cohort scheduling should restore short lifespans: {:.2} vs {:.2}",
        biased.frac_below_1k,
        baseline.frac_below_1k
    );
}

#[test]
fn biased_scheduling_costs_wall_time() {
    // Restricting concurrency idles cores when threads == cores; the
    // benefit is bought with wall time, and the ablation reports it
    // honestly.
    let study = run_biased_sched("xalan", &params()).unwrap();
    let baseline = study.row("baseline", 48).expect("baseline row");
    let biased = study.row("biased-2", 48).expect("biased-2 row");
    assert!(biased.wall > baseline.wall);
}

#[test]
fn heaplets_improve_wall_time_at_high_thread_counts() {
    let study = run_heaplets("xalan", &params()).unwrap();
    let baseline = study.row("baseline", 48).expect("baseline row");
    let heaplets = study.row("heaplets", 48).expect("heaplets row");
    assert!(
        heaplets.wall.as_secs_f64() < baseline.wall.as_secs_f64() * 0.95,
        "thread-local collection should beat stop-the-world: {} vs {}",
        heaplets.wall,
        baseline.wall
    );
}

#[test]
fn heaplets_shorten_individual_pauses() {
    // "shortening garbage collection pause time" — the paper's predicted
    // benefit. Compare the largest *minor* pause; full collections remain
    // global in both modes.
    use scalesim::gc::GcKind;
    use scalesim::runtime::{Jvm, JvmConfig};
    use scalesim::workloads::xalan;

    let app = xalan().scaled(0.1);
    let base = Jvm::new(JvmConfig::builder().threads(48).seed(42).build().unwrap())
        .run(&app)
        .unwrap();
    let heap = Jvm::new(
        JvmConfig::builder()
            .threads(48)
            .heaplets(true)
            .seed(42)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();

    let max_minor = |r: &scalesim::runtime::RunReport| {
        r.gc.events()
            .iter()
            .filter(|e| matches!(e.kind, GcKind::Minor | GcKind::LocalMinor))
            .map(|e| e.pause)
            .max()
            .expect("at least one minor collection")
    };
    let base_pause = max_minor(&base);
    let heap_pause = max_minor(&heap);
    assert!(
        heap_pause.as_nanos() * 4 < base_pause.as_nanos(),
        "local pauses ({heap_pause}) should be far below STW pauses ({base_pause})"
    );
}

#[test]
fn heaplets_never_run_global_minor_collections() {
    use scalesim::gc::GcKind;
    use scalesim::runtime::{Jvm, JvmConfig};
    use scalesim::workloads::lusearch;

    let report = Jvm::new(
        JvmConfig::builder()
            .threads(16)
            .heaplets(true)
            .seed(1)
            .build()
            .unwrap(),
    )
    .run(&lusearch().scaled(0.05))
    .unwrap();
    assert_eq!(report.gc.count(GcKind::Minor), 0);
    assert!(report.gc.count(GcKind::LocalMinor) > 0);
}
