//! Server-scale request workloads, end to end: deterministic arrivals
//! and latency percentiles, the retry-storm metastability golden and its
//! elimination by backoff + admission control, attempt-conservation of
//! the overload counters, a snapshot/repro round-trip for a server spec,
//! and byte-identity of the `ext-server` artifact across a single-process
//! sweep, a resumed checkpoint, and a merged multi-process campaign.
//!
//! These tests share the process-wide run cache and checkpoint store, so
//! the ones that touch them serialize on one guard mutex.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use scalesim::experiments::{
    artifact_tables, campaign, checkpoint, clear_run_cache, run_server_study, take_run_manifests,
    ExpParams,
};
use scalesim::runtime::{Jvm, JvmConfig, ReproSpec, RunReport};
use scalesim::workloads::{open_poisson_times, xalan, ServerSpec};

fn guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-server-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A short, cheap spec for the direct-engine tests: the driver's policy
/// shape at a fraction of the driver's horizon.
fn short_spec() -> ServerSpec {
    let mut spec = ServerSpec::naive(60_000);
    spec.horizon_ns = 200_000_000;
    spec.measure_from_ns = 120_000_000;
    spec
}

fn run_spec(spec: ServerSpec, threads: usize, seed: u64) -> RunReport {
    let mut cfg = JvmConfig::builder();
    cfg.threads(threads)
        .seed(seed)
        .heap_bytes(16 << 20)
        .server(spec);
    Jvm::new(cfg.build().unwrap())
        .run(&xalan().scaled(0.01))
        .unwrap()
}

#[test]
fn arrival_schedule_is_a_pure_function_of_seed() {
    assert_eq!(
        open_poisson_times(80_000, 42, 300_000_000),
        open_poisson_times(80_000, 42, 300_000_000)
    );
    assert_ne!(
        open_poisson_times(80_000, 42, 300_000_000),
        open_poisson_times(80_000, 43, 300_000_000)
    );
}

#[test]
fn server_runs_and_percentiles_are_deterministic_at_the_pinned_seed() {
    let a = run_spec(short_spec(), 8, 42);
    let b = run_spec(short_spec(), 8, 42);
    let sa = a.server.as_ref().expect("server stats");
    let sb = b.server.as_ref().expect("server stats");
    assert_eq!(sa, sb, "server stats are bit-identical");
    for q in [0.50, 0.95, 0.99, 0.999] {
        assert_eq!(sa.latency_p(q), sb.latency_p(q), "p{q} differs");
    }
    let mut a2 = a.clone();
    let mut b2 = b.clone();
    a2.host_ns = 0;
    b2.host_ns = 0;
    assert_eq!(format!("{a2:?}"), format!("{b2:?}"), "full reports match");
    // Percentile ladder is monotone and populated.
    let p50 = sa.latency_p(0.50).expect("goodput recorded");
    let p999 = sa.latency_p(0.999).expect("goodput recorded");
    assert!(p50 <= p999, "{p50} > {p999}");
    // A different seed perturbs the workload.
    let c = run_spec(short_spec(), 8, 43);
    assert_ne!(sa, c.server.as_ref().unwrap());
}

#[test]
fn overload_counters_conserve_every_attempt() {
    for (threads, seed) in [(4, 42), (8, 42), (8, 7)] {
        let r = run_spec(short_spec(), threads, seed);
        let s = r.server.as_ref().expect("server stats");
        assert!(s.arrivals > 0);
        assert!(
            s.conserves(),
            "arrivals {} != goodput {} + orphans {} + sheds {} + timeouts {} + in_flight {}",
            s.arrivals,
            s.goodput,
            s.orphan_completions,
            s.sheds,
            s.timeouts,
            s.in_flight
        );
    }
}

#[test]
fn server_spec_survives_a_snapshot_repro_round_trip() {
    let app = xalan().scaled(0.01);
    let mut cfg = JvmConfig::builder();
    cfg.threads(6)
        .seed(42)
        .heap_bytes(16 << 20)
        .server(ServerSpec::robust(40_000, 96).with_fault_window(50_000_000, 80_000_000));
    let config = cfg.build().unwrap();
    let repro = ReproSpec::capture(&app, &config, 0xfeed);
    let json = repro.to_json().to_string();
    let parsed = ReproSpec::from_json(
        &scalesim::runtime::JsonValue::parse(&json).expect("repro json parses"),
    )
    .expect("repro json round-trips");
    let (app2, config2) = parsed.reconstruct().expect("repro reconstructs");
    assert_eq!(config2.server, config.server, "server spec survives");
    let a = Jvm::new(config).run(&app).unwrap();
    let b = Jvm::new(config2).run(&app2).unwrap();
    assert_eq!(a.server, b.server, "reconstructed run matches original");
}

/// The acceptance golden: at the pinned seed the naive policy's tail
/// goodput (measured after the injected GC stall has ended) collapses to
/// at least 40% below the no-fault baseline — the overload outlives the
/// fault — while backoff + admission control recovers to within 5%.
#[test]
fn retry_storm_is_metastable_under_naive_policy_and_eliminated_by_robust() {
    let _guard = guard();
    clear_run_cache();
    let _ = take_run_manifests();
    let params = ExpParams::quick().with_threads(vec![16]);
    let study = run_server_study(&params).unwrap();
    let base = study.tail_ratio("no-fault", 16).unwrap();
    let naive = study.tail_ratio("naive", 16).unwrap();
    let robust = study.tail_ratio("robust", 16).unwrap();
    assert!(base > 0.9, "no-fault baseline must be healthy: {base}");
    assert!(
        naive <= 0.6 * base,
        "naive tail goodput {naive} not >=40% below baseline {base}"
    );
    assert!(
        (robust - base).abs() <= 0.05 * base,
        "robust tail goodput {robust} not within 5% of baseline {base}"
    );
    // The signature observables behind the curves: the naive collapse is
    // a retry storm (timeouts retried immediately), the robust recovery
    // sheds load instead of amplifying it.
    let naive_row = study.row("naive", 16).unwrap();
    let robust_row = study.row("robust", 16).unwrap();
    assert!(naive_row.timeouts > 10 * robust_row.timeouts);
    assert!(naive_row.retries > robust_row.retries);
    let _ = take_run_manifests();
}

/// The `ext-server` artifact renders byte-identically whether the sweep
/// runs in one process, resumes from a half-written checkpoint store, or
/// merges from a multi-worker campaign directory.
#[test]
fn artifact_is_byte_identical_across_sweep_resume_and_campaign() {
    let _guard = guard();
    let params = ExpParams::quick().with_scale(0.01).with_threads(vec![16]);

    // Reference: one uninterrupted in-process sweep.
    checkpoint::disable_store();
    clear_run_cache();
    let _ = take_run_manifests();
    let reference = artifact_tables("ext-server", &params).unwrap().unwrap();
    let ref_csv = reference[0].table.to_csv();
    let ref_manifests: Vec<String> = take_run_manifests()
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.host_ns = 0;
            m.to_json_line()
        })
        .collect();
    assert_eq!(ref_manifests.len(), 3, "three scenarios at one grid point");

    // Checkpoint half the sweep, drop the in-memory cache, resume, and
    // finish: the rendered table must not change.
    let store = temp_dir("resume");
    clear_run_cache();
    checkpoint::set_store(&store).unwrap();
    let _ = artifact_tables("ext-server", &params).unwrap().unwrap();
    let _ = take_run_manifests();
    checkpoint::disable_store();
    clear_run_cache();
    let stats = checkpoint::resume_from(&store).unwrap();
    assert_eq!(stats.loaded, 3, "{stats:?}");
    let resumed = artifact_tables("ext-server", &params).unwrap().unwrap();
    let resumed_manifests: Vec<String> = take_run_manifests()
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.host_ns = 0;
            m.to_json_line()
        })
        .collect();
    assert_eq!(
        resumed[0].table.to_csv(),
        ref_csv,
        "resume changed the table"
    );
    assert_eq!(resumed_manifests, ref_manifests, "resume changed manifests");
    checkpoint::disable_store();
    let _ = std::fs::remove_dir_all(&store);

    // Campaign: drain the same artifact over a shared directory and
    // merge; the merged table must be byte-identical too.
    clear_run_cache();
    let dir = temp_dir("campaign");
    let spec = campaign::CampaignSpec {
        artifact: "ext-server".to_owned(),
        params,
    };
    let outcome = campaign::run_local(&dir, &spec).unwrap();
    assert!(!outcome.degraded(), "campaign finished clean");
    assert_eq!(
        outcome.tables[0].table.to_csv(),
        ref_csv,
        "campaign differs"
    );
    let _ = std::fs::remove_dir_all(&dir);
    clear_run_cache();
    let _ = take_run_manifests();
}
