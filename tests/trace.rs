//! Observability integration tests: deterministic timeline traces,
//! chaos instant markers, and the tracing-off zero-impact guarantee.
//!
//! The timeline recorder is observational only — the same `(config,
//! seed)` must produce byte-identical exports, and switching tracing off
//! must leave every measurement bit-for-bit unchanged.

use scalesim::runtime::{Jvm, JvmConfig, RunReport};
use scalesim::trace::check::validate_chrome_trace;
use scalesim::trace::{
    format_timeline, parse_timeline, to_chrome_json, CounterId, EventKind, Phase, Timeline,
    TraceConfig,
};
use scalesim::workloads::{lusearch, xalan, SyntheticApp};

fn traced_run(app: &SyntheticApp, threads: usize, seed: u64, trace: TraceConfig) -> RunReport {
    Jvm::new(
        JvmConfig::builder()
            .threads(threads)
            .seed(seed)
            .trace(trace)
            .build()
            .unwrap(),
    )
    .run(app)
    .unwrap()
}

/// Tentpole guarantee: the same `(config, seed)` yields byte-identical
/// Chrome JSON and text exports, and the text form round-trips.
#[test]
fn identical_traced_runs_export_byte_identical_artifacts() {
    let app = lusearch().scaled(0.02);
    let a = traced_run(&app, 4, 42, TraceConfig::on());
    let b = traced_run(&app, 4, 42, TraceConfig::on());

    assert!(!a.timeline.is_empty(), "traced run recorded nothing");
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(to_chrome_json(&a.timeline), to_chrome_json(&b.timeline));

    let text = format_timeline(&a.timeline);
    assert_eq!(text, format_timeline(&b.timeline));
    let reparsed = parse_timeline(&text).expect("own text output parses");
    let original: Vec<_> = a.timeline.events().copied().collect();
    assert_eq!(reparsed, original);
}

/// Chaos faults leave matching instant markers: every injection the
/// engine counted appears as exactly one `ph:"I"` event, deterministically.
#[test]
fn chaos_faults_leave_matching_instant_markers() {
    use scalesim::simkit::ChaosConfig;

    let app = xalan().scaled(0.05);
    let chaos = ChaosConfig {
        gc_stall_period: 1,
        gc_stall_factor: 0.05,
        ..ChaosConfig::default()
    };
    let run = || {
        Jvm::new(
            JvmConfig::builder()
                .threads(4)
                .seed(42)
                .chaos(chaos)
                .monitors(false)
                .trace(TraceConfig::on())
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap()
    };
    let report = run();

    let stalls = report
        .timeline
        .events()
        .filter(|ev| ev.kind == EventKind::ChaosGcStall)
        .count() as u64;
    // MonitorEnqueue is the one non-chaos instant kind (the wait-pairing
    // audit's enqueue marker), so chaos markers are every other instant.
    let chaos_instants = report
        .timeline
        .events()
        .filter(|ev| ev.kind.phase() == Phase::Instant && ev.kind != EventKind::MonitorEnqueue)
        .count() as u64;
    assert!(stalls > 0, "gc_stall_period=1 must inject on every GC");
    assert_eq!(
        stalls, chaos_instants,
        "the only chaos class enabled is GcStall"
    );
    assert_eq!(
        chaos_instants,
        report.counters.get(CounterId::ChaosInjections)
    );

    // Same plan, same markers: the chaos timeline is deterministic too.
    assert_eq!(report.timeline, run().timeline);

    // And with chaos off the marker tracks stay silent.
    let calm = traced_run(&app, 4, 42, TraceConfig::on());
    assert_eq!(calm.counters.get(CounterId::ChaosInjections), 0);
    assert!(
        calm.counters.get(CounterId::MinorGcs) > 0,
        "app must collect"
    );
    assert!(calm
        .timeline
        .events()
        .all(|ev| ev.kind.phase() != Phase::Instant || ev.kind == EventKind::MonitorEnqueue));
}

/// With tracing off the report is byte-identical to the plain run, and
/// tracing *on* does not perturb the pinned golden totals either.
#[test]
fn tracing_off_is_observationally_invisible() {
    let app = xalan().scaled(0.01);
    let plain = Jvm::new(JvmConfig::builder().threads(4).seed(42).build().unwrap())
        .run(&app)
        .unwrap();
    let traced = traced_run(&app, 4, 42, TraceConfig::on());

    // Tracing only adds timeline events; blank that one field and the
    // reports must render identically, counters included.
    assert!(plain.timeline.is_empty());
    assert!(!traced.timeline.is_empty());
    let mut a = plain.clone();
    let mut b = traced.clone();
    a.timeline = Timeline::disabled();
    b.timeline = Timeline::disabled();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    // Golden totals from tests/proptests.rs hold with the recorder live.
    assert_eq!(traced.events_processed, 9512);
    assert_eq!(traced.wall_time.as_nanos(), 13_439_563);

    // The counters registry is always on, traced or not.
    assert!(plain.counters.get(CounterId::Allocations) > 0);
    assert_eq!(
        plain.counters.get(CounterId::EventsProcessed),
        plain.events_processed
    );
}

/// A real export carries every span family the issue names — thread
/// states, monitor hold/wait with owner attribution, GC phases,
/// safepoints — plus heap-pressure counter samples, and validates as
/// Chrome trace-event JSON.
#[test]
fn chrome_export_carries_every_span_family() {
    let app = xalan().scaled(0.05);
    let report = traced_run(&app, 4, 42, TraceConfig::on());
    let json = to_chrome_json(&report.timeline);

    let check = validate_chrome_trace(&json).expect("export validates");
    assert_eq!(
        check.events as usize,
        report.timeline.len() + check.metadata
    );
    assert!(check.spans > 0);
    assert!(check.counters > 0, "no heap-pressure samples");
    assert!(check.metadata > 0, "no process/track naming metadata");

    for family in [
        "\"name\":\"running\"",
        "\"name\":\"runnable\"",
        "\"name\":\"hold\"",
        "\"name\":\"wait\"",
        "\"name\":\"safepoint\"",
        "\"name\":\"heap-used\"",
        "\"cat\":\"gc\"",
    ] {
        assert!(json.contains(family), "export lacks {family}");
    }

    // Owner attribution: every monitor-hold span names a live thread.
    let mut holds = 0;
    for ev in report.timeline.events() {
        if ev.kind == EventKind::MonitorHold {
            holds += 1;
            assert!((ev.arg as usize) < 4, "hold owner {} out of range", ev.arg);
        }
    }
    assert!(holds > 0, "xalan at 4 threads must contend on monitors");
}

/// Ring-buffer retention: a tiny capacity drops the oldest events (the
/// cap applies to each subsystem recorder — scheduler, locks, GC,
/// runtime — so the merge holds at most four rings' worth) but the
/// survivors still export as a valid, loadable trace.
#[test]
fn tiny_ring_capacity_drops_events_but_still_exports() {
    let app = lusearch().scaled(0.02);
    let report = traced_run(&app, 4, 42, TraceConfig::on().with_capacity(64));

    assert!(report.timeline.len() <= 4 * 64);
    assert!(report.timeline.dropped() > 0, "64 slots must overflow");
    assert_eq!(
        report.counters.get(CounterId::TimelineDropped),
        report.timeline.dropped()
    );

    let json = to_chrome_json(&report.timeline);
    let check = validate_chrome_trace(&json).expect("truncated export validates");
    assert!(check.events > 0);
    assert!(json.contains(&format!(
        "\"droppedEvents\":\"{}\"",
        report.timeline.dropped()
    )));
}
