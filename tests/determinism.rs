//! A run is a pure function of (configuration, application): identical
//! inputs produce bit-identical measurements; seeds and thread counts
//! perturb them.

use scalesim::runtime::{Jvm, JvmConfig, RunReport};
use scalesim::workloads::{all_apps, AppModel, SyntheticApp};

fn run(app: &SyntheticApp, threads: usize, seed: u64) -> RunReport {
    Jvm::new(
        JvmConfig::builder()
            .threads(threads)
            .seed(seed)
            .build()
            .unwrap(),
    )
    .run(app)
    .unwrap()
}

fn fingerprints(r: &RunReport) -> (u64, u64, u64, u64, u64) {
    (
        r.wall_time.as_nanos(),
        r.gc_time.as_nanos(),
        r.locks.total.acquisitions + r.locks.total.contentions,
        r.trace.allocations(),
        r.events_processed,
    )
}

#[test]
fn identical_inputs_give_identical_measurements_for_all_apps() {
    for app in all_apps() {
        let scaled = app.scaled(0.005);
        let a = run(&scaled, 6, 11);
        let b = run(&scaled, 6, 11);
        assert_eq!(
            fingerprints(&a),
            fingerprints(&b),
            "{} is nondeterministic",
            app.name()
        );
        assert_eq!(a.trace.histogram(), b.trace.histogram());
        assert_eq!(a.gc.events(), b.gc.events());
    }
}

#[test]
fn different_seeds_perturb_the_run() {
    let app = scalesim::workloads::lusearch().scaled(0.005);
    let a = run(&app, 6, 1);
    let b = run(&app, 6, 2);
    assert_ne!(fingerprints(&a), fingerprints(&b));
    // ... but not the amount of work done.
    assert_eq!(a.total_items(), b.total_items());
}

#[test]
fn sweep_order_does_not_leak_between_runs() {
    // Running T=4 then T=8 must give the same T=8 result as running T=8
    // alone (no hidden global state).
    let app = scalesim::workloads::xalan().scaled(0.005);
    let _warmup = run(&app, 4, 9);
    let after = run(&app, 8, 9);
    let fresh = run(&app, 8, 9);
    assert_eq!(fingerprints(&after), fingerprints(&fresh));
}

#[test]
fn parallel_sweep_is_deterministic() {
    use scalesim::experiments::{run_all, RunSpec};
    let specs: Vec<RunSpec> = (0..8)
        .map(|i| RunSpec::new(scalesim::workloads::sunflow().scaled(0.003), 2 + i % 4, 33))
        .collect();
    let first: Vec<_> = run_all(&specs).iter().map(fingerprints).collect();
    let second: Vec<_> = run_all(&specs).iter().map(fingerprints).collect();
    assert_eq!(first, second);
}

#[test]
fn counters_and_timeline_join_the_deterministic_fingerprint() {
    use scalesim::trace::{to_chrome_json, TraceConfig};
    let app = scalesim::workloads::xalan().scaled(0.005);
    let traced = |seed: u64| {
        Jvm::new(
            JvmConfig::builder()
                .threads(6)
                .seed(seed)
                .trace(TraceConfig::on())
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap()
    };
    let a = traced(11);
    let b = traced(11);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.timeline, b.timeline);
    // The exported artifact is byte-identical, not merely equivalent.
    assert_eq!(to_chrome_json(&a.timeline), to_chrome_json(&b.timeline));
    // A different seed perturbs the counters like any other measurement.
    assert_ne!(a.counters, traced(12).counters);
}
