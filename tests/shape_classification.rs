//! Shape tests for the §II-C classification and the §III workload
//! distribution analysis.

use scalesim::experiments::{run_scalability, run_workdist, ExpParams};
use scalesim::workloads::ScalabilityClass;

#[test]
fn all_six_apps_classify_as_the_paper_says() {
    let params = ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![4, 16, 48]);
    let table = run_scalability(&params).unwrap();
    assert_eq!(table.rows.len(), 6);
    for row in &table.rows {
        assert!(
            row.matches_paper(),
            "{} measured {} (speedup {:.2}x) but the paper says {}",
            row.app,
            row.measured().label(),
            row.speedup(),
            row.expected.label()
        );
    }
}

#[test]
fn scalable_apps_keep_improving_to_48_threads() {
    let params = ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![16, 32, 48]);
    let table = run_scalability(&params).unwrap();
    for row in &table.rows {
        if row.expected == ScalabilityClass::Scalable {
            assert!(
                row.series().is_decreasing(),
                "{}: wall time should still shrink beyond 16 threads",
                row.app
            );
        }
    }
}

#[test]
fn workload_distribution_separates_the_classes() {
    let params = ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![16, 48]);
    let dist = run_workdist(&params).unwrap();

    for row in &dist.rows {
        match row.app.as_str() {
            // "nearly a uniform distribution of workload among threads"
            "sunflow" | "lusearch" | "xalan" | "h2" => {
                assert!(row.cv < 0.3, "{}: cv {:.2} not uniform", row.app, row.cv);
            }
            // "jython mainly uses three to four threads to do most of the
            // work even when we set the number ... larger than 16"
            "jython" | "eclipse" => {
                assert!(
                    row.threads_for_90pct <= 4,
                    "{} at T={}: {} threads carry 90% of work",
                    row.app,
                    row.threads,
                    row.threads_for_90pct
                );
                assert!(row.cv > 0.5, "{}: cv {:.2} too uniform", row.app, row.cv);
            }
            other => panic!("unexpected app {other}"),
        }
    }
}

#[test]
fn jython_concentration_is_independent_of_configured_threads() {
    let params = ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![16, 48]);
    let dist = run_workdist(&params).unwrap();
    let rows = dist.rows_of("jython");
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0].threads_for_90pct, rows[1].threads_for_90pct,
        "the set of working jython threads should not change from 16 to 48"
    );
    assert!((rows[0].max_share - rows[1].max_share).abs() < 0.02);
}
