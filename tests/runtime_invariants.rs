//! Cross-crate invariants that must hold for every run, regardless of
//! application, thread count, policy or heap layout.

use scalesim::runtime::{Jvm, JvmConfig, RunReport};
use scalesim::sched::SchedPolicy;
use scalesim::simkit::SimDuration;
use scalesim::workloads::{all_apps, AppModel};

fn configs() -> Vec<(String, JvmConfig)> {
    vec![
        (
            "fair-4".into(),
            JvmConfig::builder().threads(4).seed(3).build().unwrap(),
        ),
        (
            "fair-32".into(),
            JvmConfig::builder().threads(32).seed(3).build().unwrap(),
        ),
        (
            "oversubscribed".into(),
            JvmConfig::builder()
                .threads(12)
                .cores(4)
                .seed(3)
                .build()
                .unwrap(),
        ),
        (
            "biased".into(),
            JvmConfig::builder()
                .threads(8)
                .policy(SchedPolicy::Biased { cohorts: 2 })
                .seed(3)
                .build()
                .unwrap(),
        ),
        (
            "heaplets".into(),
            JvmConfig::builder()
                .threads(8)
                .heaplets(true)
                .seed(3)
                .build()
                .unwrap(),
        ),
    ]
}

fn check_invariants(label: &str, report: &RunReport, expected_items: u64) {
    // 1. Work conservation: every item completes exactly once.
    assert_eq!(
        report.total_items(),
        expected_items,
        "{label}: item count mismatch"
    );

    // 2. Object conservation: every allocation eventually dies or is
    //    censored at shutdown.
    assert_eq!(
        report.trace.allocations(),
        report.trace.deaths() + report.trace.censored(),
        "{label}: object leak"
    );
    assert_eq!(
        report.trace.allocations(),
        report.heap.objects_allocated,
        "{label}: tracer/heap disagree on allocations"
    );

    // 3. Time conservation per thread: state times sum to at most the
    //    wall clock (threads may start late / finish early).
    for (i, t) in report.per_thread.iter().enumerate() {
        assert!(
            t.times.total() <= report.wall_time + SimDuration::from_nanos(1),
            "{label}: thread {i} accounted {} of {} wall",
            t.times.total(),
            report.wall_time
        );
    }

    // 4. Mutator/GC decomposition: mutator_wall + gc_time == wall
    //    (for shared-nursery STW mode).
    if label != "heaplets" {
        assert_eq!(
            report.mutator_wall() + report.gc_time,
            report.wall_time,
            "{label}: decomposition broken"
        );
    }

    // 5. Lock sanity: contentions never exceed acquisitions + queue
    //    lengths; every contended acquire eventually acquired (no thread
    //    terminates while waiting), so acquisitions >= contentions.
    assert!(
        report.locks.total.acquisitions >= report.locks.total.contentions,
        "{label}: more contentions than acquisitions"
    );

    // 6. GC sanity: collected + survived bytes never exceed allocated.
    assert!(
        report.gc.collected_bytes() <= report.heap.bytes_allocated,
        "{label}: collected more than allocated"
    );

    // 7. CPU capacity: aggregate mutator CPU cannot exceed cores × wall.
    let capacity = report.wall_time.as_secs_f64() * report.cores as f64;
    assert!(
        report.mutator_cpu.as_secs_f64() <= capacity * 1.0001,
        "{label}: mutator CPU {} exceeds capacity {capacity}s",
        report.mutator_cpu
    );
}

#[test]
fn invariants_hold_for_every_app_and_config() {
    for app in all_apps() {
        let scaled = app.scaled(0.01);
        for (label, config) in configs() {
            let report = Jvm::new(config).run(&scaled).unwrap();
            check_invariants(
                &format!("{}/{label}", app.name()),
                &report,
                scaled.total_items(),
            );
        }
    }
}

#[test]
fn single_thread_run_has_no_contention_and_no_waiting() {
    let report = Jvm::new(JvmConfig::builder().threads(1).seed(5).build().unwrap())
        .run(&scalesim::workloads::sunflow().scaled(0.01))
        .unwrap();
    assert_eq!(report.locks.total.contentions, 0);
    assert_eq!(
        report.per_thread[0].times.blocked_monitor,
        SimDuration::ZERO
    );
}

#[test]
fn helper_threads_do_not_complete_application_work() {
    let app = scalesim::workloads::xalan().scaled(0.01);
    let with = Jvm::new(
        JvmConfig::builder()
            .threads(4)
            .helper_threads(4)
            .seed(5)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    let without = Jvm::new(
        JvmConfig::builder()
            .threads(4)
            .helper_threads(0)
            .seed(5)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    assert_eq!(with.total_items(), without.total_items());
    assert_eq!(with.per_thread.len(), 4);
    assert_eq!(without.per_thread.len(), 4);
}

#[test]
fn helper_threads_increase_mutator_suspension() {
    let app = scalesim::workloads::xalan().scaled(0.02);
    let noisy = Jvm::new(
        JvmConfig::builder()
            .threads(8)
            .cores(8)
            .helper_threads(6)
            .helper_profile(SimDuration::from_micros(500), SimDuration::from_millis(1))
            .seed(5)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    let quiet = Jvm::new(
        JvmConfig::builder()
            .threads(8)
            .cores(8)
            .helper_threads(0)
            .seed(5)
            .build()
            .unwrap(),
    )
    .run(&app)
    .unwrap();
    assert!(
        noisy.total_suspension() > quiet.total_suspension(),
        "helper interference should suspend mutators: {} vs {}",
        noisy.total_suspension(),
        quiet.total_suspension()
    );
}

#[test]
fn heap_is_sized_at_three_times_the_minimum() {
    for app in all_apps() {
        let config = JvmConfig::default();
        assert_eq!(
            config.heap_bytes(app.min_heap_bytes()),
            3 * app.min_heap_bytes(),
            "{}",
            app.name()
        );
    }
}
