//! Shape tests for Figure 2 (§III-C): GC time grows with threads while
//! pure mutator time keeps shrinking through 48 threads.

use scalesim::experiments::{run_fig2, ExpParams};

fn params() -> ExpParams {
    ExpParams::paper()
        .with_scale(0.1)
        .with_threads(vec![4, 16, 48])
}

#[test]
fn gc_time_increases_with_threads_for_every_scalable_app() {
    let fig2 = run_fig2(&params()).unwrap();
    for app in fig2.apps() {
        let gc = fig2.gc_series(&app);
        assert!(gc.is_increasing(), "{app} GC time not increasing: {gc}");
        let growth = gc.growth_ratio().expect("nonzero GC at 4 threads");
        assert!(growth > 1.5, "{app} GC time grew only {growth:.2}x");
    }
}

#[test]
fn mutator_time_decreases_through_48_threads() {
    let fig2 = run_fig2(&params()).unwrap();
    for app in fig2.apps() {
        let m = fig2.mutator_series(&app);
        assert!(m.is_decreasing(), "{app} mutator time not decreasing: {m}");
        let shrink = 1.0 / m.growth_ratio().expect("nonzero");
        assert!(
            shrink > 5.0,
            "{app} mutator only {shrink:.2}x faster at 48 vs 4 threads"
        );
    }
}

#[test]
fn gc_share_of_execution_rises_monotonically() {
    let fig2 = run_fig2(&params()).unwrap();
    for app in fig2.apps() {
        let share = fig2.gc_share_series(&app);
        assert!(
            share.is_increasing(),
            "{app} GC share not increasing: {share}"
        );
        let last = share.last_y().expect("non-empty");
        assert!(
            last > 0.05,
            "{app} GC share at 48T is only {last:.3} — should be substantial"
        );
    }
}

#[test]
fn minor_collection_count_is_insensitive_to_threads() {
    // Fixed total allocation through a fixed nursery: the number of minor
    // GCs barely moves; their per-pause cost is what grows.
    let fig2 = run_fig2(&params()).unwrap();
    for app in fig2.apps() {
        let rows = fig2.rows_of(&app);
        let (lo, hi) = (
            rows.iter().map(|r| r.minor).min().expect("rows"),
            rows.iter().map(|r| r.minor).max().expect("rows"),
        );
        assert!(
            hi - lo <= lo / 2 + 2,
            "{app} minor GC count varies too much across threads: {lo}..{hi}"
        );
    }
}

#[test]
fn full_collections_appear_only_under_thread_scaling() {
    // Prolonged lifespans promote more; the paper predicts "more full GC
    // invocations" at high thread counts. At this scale full GCs may be
    // rare, so assert monotonicity rather than presence.
    let fig2 = run_fig2(&params()).unwrap();
    for app in fig2.apps() {
        let rows = fig2.rows_of(&app);
        let first = rows.first().expect("rows").full;
        let last = rows.last().expect("rows").full;
        assert!(
            last >= first,
            "{app}: fewer full GCs at 48T ({last}) than at 4T ({first})"
        );
    }
}
