//! Self-healing sweep machinery, end to end: durable checkpoint/resume
//! (including a torn tail record), the hung-run watchdog, and the
//! automatic failure shrinker with its repro files.
//!
//! These tests share the process-wide run cache, failure digest, and
//! checkpoint store, so every test that touches them serializes on one
//! guard mutex and isolates its sweep points by seed.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use scalesim::experiments::{
    checkpoint, clear_run_cache, run_all, run_isolated, shrink_failure, take_run_manifests,
    take_sweep_failures, write_repro, RunManifest, RunSpec, SweepFailureKind,
};
use scalesim::runtime::{JsonValue, JvmConfig, ReproSpec, RunOutcome, RunReport};
use scalesim::simkit::{ChaosConfig, RunBudget};
use scalesim::workloads::{sunflow, xalan};

fn guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn memo_disabled() -> bool {
    std::env::var_os("SCALESIM_NO_MEMO").is_some_and(|v| v == "1")
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalesim-selfheal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Debug rendering with the host-wall field zeroed — the one field a
/// resumed run cannot (and should not) reproduce when compared against
/// a fresh reference run.
fn debug_sans_host(report: &RunReport) -> String {
    let mut r = report.clone();
    r.host_ns = 0;
    format!("{r:?}")
}

fn manifest_line_sans_host(m: &RunManifest) -> String {
    let mut m = m.clone();
    m.host_ns = 0;
    m.to_json_line()
}

#[test]
fn kill_and_resume_is_byte_identical_even_with_a_torn_tail() {
    if memo_disabled() {
        return;
    }
    let _guard = guard();
    let dir = temp_store("resume");
    let seed = 884_421;
    let specs = vec![
        RunSpec::new(xalan().scaled(0.004), 2, seed),
        RunSpec::new(sunflow().scaled(0.004), 3, seed),
        RunSpec::new(xalan().scaled(0.004), 4, seed),
        RunSpec::new(sunflow().scaled(0.004), 2, seed),
    ];

    // Reference: one uninterrupted sweep, no store.
    checkpoint::disable_store();
    clear_run_cache();
    let _ = take_run_manifests();
    let reference = run_all(&specs);
    let ref_manifests: Vec<RunManifest> = take_run_manifests()
        .into_iter()
        .filter(|m| m.seed == seed)
        .collect();
    assert_eq!(ref_manifests.len(), specs.len());

    // Interrupted sweep: checkpoint the first half, then "crash" —
    // drop the in-memory cache and leave a torn record at the tail.
    clear_run_cache();
    checkpoint::set_store(&dir).unwrap();
    let _ = run_all(&specs[..2]);
    let _ = take_run_manifests();
    checkpoint::disable_store();
    clear_run_cache();
    {
        use std::io::Write;
        let mut tail = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("tail.jsonl"))
            .unwrap();
        // No trailing newline: exactly what a mid-write crash leaves.
        tail.write_all(b"deadbeef {\"v\":1,\"key\":\"00").unwrap();
    }

    // Resume: the two verified records replay, the torn one is dropped
    // (and scrubbed from the tail), and the full sweep completes with
    // byte-identical reports and manifests, modulo host wall time.
    let stats = checkpoint::resume_from(&dir).unwrap();
    assert_eq!(stats.loaded, 2, "{stats:?}");
    assert!(stats.skipped >= 1, "{stats:?}");
    let tail_text = std::fs::read_to_string(dir.join("tail.jsonl")).unwrap();
    assert!(
        !tail_text.contains("deadbeef") && tail_text.lines().count() == 2,
        "torn line survived the tail rewrite"
    );
    let resumed = run_all(&specs);
    let resumed_manifests: Vec<RunManifest> = take_run_manifests()
        .into_iter()
        .filter(|m| m.seed == seed)
        .collect();
    assert_eq!(resumed.len(), reference.len());
    for (a, b) in reference.iter().zip(&resumed) {
        assert_eq!(debug_sans_host(a), debug_sans_host(b));
    }
    assert_eq!(resumed_manifests.len(), ref_manifests.len());
    for (a, b) in ref_manifests.iter().zip(&resumed_manifests) {
        assert_eq!(manifest_line_sans_host(a), manifest_line_sans_host(b));
    }
    // Restored points report the provenance of their original run, not
    // a cache hit — exactly what the uninterrupted reference recorded.
    assert!(resumed_manifests.iter().all(|m| m.memo == "miss"));

    checkpoint::disable_store();
    clear_run_cache();
    let _ = take_sweep_failures();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_runs_checkpoint_and_resume_like_any_other() {
    if memo_disabled() {
        return;
    }
    let _guard = guard();
    let dir = temp_store("trunc");
    let seed = 884_777;
    let mut spec = RunSpec::new(xalan().scaled(0.004), 3, seed);
    spec.config.budget = RunBudget {
        max_events: 2_000,
        max_sim_time: None,
        max_host_ms: None,
        watchdog_ms: None,
    };

    checkpoint::disable_store();
    clear_run_cache();
    let reference = run_all(std::slice::from_ref(&spec));
    assert!(
        matches!(reference[0].outcome, RunOutcome::Truncated(_)),
        "{:?}",
        reference[0].outcome
    );

    clear_run_cache();
    checkpoint::set_store(&dir).unwrap();
    let _ = run_all(std::slice::from_ref(&spec));
    clear_run_cache();
    let stats = checkpoint::resume_from(&dir).unwrap();
    assert_eq!(stats.loaded, 1, "{stats:?}");
    let resumed = run_all(std::slice::from_ref(&spec));
    assert_eq!(debug_sans_host(&reference[0]), debug_sans_host(&resumed[0]));

    checkpoint::disable_store();
    clear_run_cache();
    let _ = take_run_manifests();
    let _ = take_sweep_failures();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_quarantines_a_livelocked_run_without_stalling_siblings() {
    let _guard = guard();
    let _ = take_sweep_failures();
    clear_run_cache();
    const WATCHDOG_MS: u64 = 250;
    // The ext-oversub livelock recipe (dropped wakeups, monitors off,
    // heavy oversubscription) with an effectively unlimited event
    // budget: only the watchdog can end this run.
    let mut doomed = RunSpec::new(xalan().scaled(0.02), 48, 42);
    doomed.config = JvmConfig::builder()
        .threads(48)
        .cores(12)
        .seed(42)
        .chaos(ChaosConfig {
            drop_wakeup_period: 32,
            ..ChaosConfig::default()
        })
        .monitors(false)
        .budget(RunBudget {
            max_events: u64::MAX,
            max_sim_time: None,
            max_host_ms: None,
            watchdog_ms: Some(WATCHDOG_MS),
        })
        .build()
        .unwrap();
    let healthy = RunSpec::new(xalan().scaled(0.004), 2, 884_901);
    let started = Instant::now();
    let reports = run_all(&[doomed.clone(), healthy]);
    let elapsed_ms = started.elapsed().as_millis();
    assert!(
        matches!(reports[0].outcome, RunOutcome::Quarantined(_)),
        "{:?}",
        reports[0].outcome
    );
    assert!(reports[1].outcome.is_ok(), "{:?}", reports[1].outcome);
    // One attempt plus one retry, each truncated within ~2x the
    // deadline (poll quantization + slack), must stay well under the
    // cost of actually running the livelock to an event budget.
    assert!(
        elapsed_ms < 10 * u128::from(WATCHDOG_MS),
        "watchdog took {elapsed_ms} ms for a {WATCHDOG_MS} ms deadline"
    );
    let digest = take_sweep_failures();
    let entry = digest
        .iter()
        .find(|f| f.kind == SweepFailureKind::Quarantined)
        .expect("watchdogged run lands in the digest");
    assert!(entry.detail.contains("watchdog"), "{entry:?}");
    assert!(entry.detail.contains("host deadline"), "{entry:?}");
    assert!(entry.run_spec.is_some());
    clear_run_cache();
}

#[test]
fn quarantined_spec_shrinks_to_a_smaller_reproducible_one() {
    let _guard = guard();
    let _ = take_sweep_failures();
    clear_run_cache();
    let seed = 884_555;
    let mut doomed = RunSpec::new(xalan().scaled(0.01), 48, seed);
    doomed.config.chaos = ChaosConfig {
        panic_at_event: 2_000,
        ..ChaosConfig::default()
    };
    let reports = run_all(std::slice::from_ref(&doomed));
    assert!(matches!(reports[0].outcome, RunOutcome::Quarantined(_)));
    let digest = take_sweep_failures();
    let failure = digest
        .iter()
        .find(|f| f.kind == SweepFailureKind::Quarantined)
        .expect("quarantine recorded");
    let spec = failure
        .run_spec
        .as_ref()
        .expect("spec travels in the digest");

    let outcome = shrink_failure(spec).expect("deterministic panic reproduces");
    assert!(
        outcome.shrunk.threads < 48,
        "shrinker failed to reduce threads: {outcome:?}"
    );
    assert_eq!(outcome.shrunk.chaos.panic_at_event, 2_000);

    // The repro file round-trips and re-executes to the same failure.
    let dir = temp_store("shrink");
    let path = write_repro(&outcome, &dir).unwrap();
    assert!(path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("repro-") && n.ends_with(".json")));
    let text = std::fs::read_to_string(&path).unwrap();
    let loaded = ReproSpec::from_json(&JsonValue::parse(text.trim()).unwrap()).unwrap();
    assert_eq!(loaded, outcome.shrunk);
    let (app, config) = loaded.reconstruct().unwrap();
    let rebuilt = RunSpec { app, config };
    if loaded.exact {
        assert_eq!(rebuilt.memo_key(), loaded.spec_key);
    }
    let why = run_isolated(&rebuilt).expect_err("shrunk spec still fails");
    assert!(why.contains("deliberate panic"), "{why}");
    let _ = std::fs::remove_dir_all(&dir);
    clear_run_cache();
}
