//! Chaos self-validation: every fault class a `ChaosPlan` can inject must
//! be caught by an invariant monitor or contained by a run budget, and a
//! deliberately crashing run must be quarantined without taking the sweep
//! down with it.
//!
//! These tests are the proof that the monitors are not vacuous — each one
//! breaks the simulator on purpose and asserts the breakage is *detected
//! and classified*, never silently absorbed.

use std::sync::Mutex;

use scalesim::runtime::{Jvm, JvmConfig, MonitorKind, RunOutcome, SimError};
use scalesim::simkit::{ChaosConfig, RunBudget};
use scalesim::workloads::{h2, xalan};

/// Serializes the tests that drain the global sweep-failure digest, which
/// is shared across all tests in this binary.
fn digest_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A tight event budget so an injected livelock can never hang the suite.
fn backstop() -> RunBudget {
    RunBudget {
        max_events: 4_000_000,
        max_sim_time: None,
        max_host_ms: None,
        watchdog_ms: None,
    }
}

#[test]
fn dropped_wakeups_are_caught_by_a_monitor_or_the_budget() {
    // h2 serializes on a coarse latch, so a lost wakeup bites quickly.
    let cfg = JvmConfig::builder()
        .threads(16)
        .seed(42)
        .chaos(ChaosConfig {
            drop_wakeup_period: 8,
            ..ChaosConfig::default()
        })
        .budget(backstop())
        .monitors(true)
        .build()
        .unwrap();
    match Jvm::new(cfg).run(&h2().scaled(0.02)) {
        Err(SimError::Invariant(v)) => assert!(
            matches!(
                v.kind,
                MonitorKind::Scheduler | MonitorKind::MonitorProtocol | MonitorKind::QueueLiveness
            ),
            "unexpected monitor {v}"
        ),
        Ok(report) => assert!(
            matches!(report.outcome, RunOutcome::Truncated(_)),
            "a run with dropped wakeups completed clean: {:?}",
            report.outcome
        ),
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn spurious_wakeups_are_caught_by_the_protocol_monitor() {
    let cfg = JvmConfig::builder()
        .threads(16)
        .seed(42)
        .chaos(ChaosConfig {
            spurious_wakeup_period: 4,
            ..ChaosConfig::default()
        })
        .budget(backstop())
        .monitors(true)
        .build()
        .unwrap();
    let err = Jvm::new(cfg)
        .run(&h2().scaled(0.02))
        .expect_err("a spuriously woken waiter must not pass the inline check");
    match err {
        SimError::Invariant(v) => {
            assert_eq!(v.kind, MonitorKind::MonitorProtocol, "{v}");
            assert!(v.detail.contains("ungranted"), "{v}");
        }
        other => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn stalled_gc_workers_are_caught_by_the_pause_bound() {
    // Every collection stalls and the pause inflates 1000x — far past the
    // 2x(minor+full) physical ceiling.
    let cfg = JvmConfig::builder()
        .threads(8)
        .seed(42)
        .chaos(ChaosConfig {
            gc_stall_period: 1,
            gc_stall_factor: 1000.0,
            ..ChaosConfig::default()
        })
        .budget(backstop())
        .monitors(true)
        .build()
        .unwrap();
    let err = Jvm::new(cfg)
        .run(&xalan().scaled(0.02))
        .expect_err("a 1000x GC pause must trip the pause-bound monitor");
    match err {
        SimError::Invariant(v) => {
            assert_eq!(v.kind, MonitorKind::GcPauseBound, "{v}");
            assert!(v.detail.contains("ceiling"), "{v}");
        }
        other => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn tiny_gc_stalls_stay_under_the_ceiling_and_replay_identically() {
    // A small stall factor perturbs timing without violating anything:
    // the run must complete, and the same (config, seed) must reproduce
    // it bit-for-bit — chaos runs are as replayable as clean ones.
    let build = || {
        JvmConfig::builder()
            .threads(8)
            .seed(7)
            .chaos(ChaosConfig {
                gc_stall_period: 3,
                gc_stall_factor: 0.05,
                ..ChaosConfig::default()
            })
            .budget(backstop())
            .build()
            .unwrap()
    };
    let app = xalan().scaled(0.02);
    let a = Jvm::new(build()).run(&app).unwrap();
    let b = Jvm::new(build()).run(&app).unwrap();
    assert_eq!(a.outcome, RunOutcome::Ok);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    // ... and a different seed draws a different fault schedule.
    let mut other = JvmConfig::builder();
    other
        .threads(8)
        .seed(8)
        .chaos(ChaosConfig {
            gc_stall_period: 3,
            gc_stall_factor: 0.05,
            ..ChaosConfig::default()
        })
        .budget(backstop());
    let c = Jvm::new(other.build().unwrap()).run(&app).unwrap();
    assert_ne!(format!("{a:?}"), format!("{c:?}"));
}

#[test]
fn exhausted_event_budget_truncates_with_partial_metrics() {
    let cfg = JvmConfig::builder()
        .threads(8)
        .seed(42)
        .budget(RunBudget {
            max_events: 20_000,
            max_sim_time: None,
            max_host_ms: None,
            watchdog_ms: None,
        })
        .build()
        .unwrap();
    let report = Jvm::new(cfg).run(&xalan().scaled(0.1)).unwrap();
    assert!(
        matches!(report.outcome, RunOutcome::Truncated(_)),
        "{:?}",
        report.outcome
    );
    assert!(!report.outcome.is_ok());
    assert_eq!(report.outcome.marker(), "trunc");
    // Partial metrics survive the truncation.
    assert!(report.events_processed >= 20_000);
    assert!(report.total_items() > 0, "no partial progress recorded");
}

#[test]
fn memo_corruption_in_the_sweep_is_detected_and_healed() {
    use scalesim::experiments::{run_all, take_sweep_failures, RunSpec, SweepFailureKind};
    let _guard = digest_guard();
    let _ = take_sweep_failures(); // drop stale entries from other tests

    let mut spec = RunSpec::new(xalan().scaled(0.01), 4, 4242);
    spec.config.chaos = ChaosConfig {
        memo_corrupt_period: 1, // corrupt every cache insert
        ..ChaosConfig::default()
    };
    let first = run_all(std::slice::from_ref(&spec));
    assert_eq!(first[0].outcome, RunOutcome::Ok);

    // The cached fingerprint was corrupted after insert; the next lookup
    // must notice, evict, re-run, and record the corruption.
    let second = run_all(std::slice::from_ref(&spec));
    // The healed rerun is simulation-identical; only host wall time (a
    // measurement, not a simulation output) may differ.
    let mut a = first[0].clone();
    let mut b = second[0].clone();
    a.host_ns = 0;
    b.host_ns = 0;
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let failures = take_sweep_failures();
    assert!(
        failures
            .iter()
            .any(|f| f.kind == SweepFailureKind::MemoCorruption),
        "no corruption recorded: {failures:?}"
    );
}

#[test]
fn panicking_worker_is_quarantined_and_the_sweep_continues() {
    use scalesim::experiments::{run_all, take_sweep_failures, RunSpec, SweepFailureKind};
    let _guard = digest_guard();
    let _ = take_sweep_failures();

    let mut doomed = RunSpec::new(xalan().scaled(0.01), 4, 777);
    doomed.config.chaos = ChaosConfig {
        panic_at_event: 500,
        ..ChaosConfig::default()
    };
    let healthy = RunSpec::new(xalan().scaled(0.01), 8, 777);
    let reports = run_all(&[doomed, healthy]);

    assert_eq!(reports[0].outcome.marker(), "quar");
    assert_eq!(reports[0].threads, 4);
    assert_eq!(reports[1].outcome, RunOutcome::Ok);
    assert!(reports[1].total_items() > 0);

    let failures = take_sweep_failures();
    assert!(
        failures
            .iter()
            .any(|f| f.kind == SweepFailureKind::Quarantined && f.detail.contains("deliberate")),
        "panic not in the digest: {failures:?}"
    );
}

#[test]
fn oversubscription_under_chaos_terminates_and_classifies_cleanly() {
    // The ext-oversub regression: 4x threads per core plus dropped
    // wakeups, monitors off — the worst case for livelock. The run must
    // end within the event budget and be classified (clean completion,
    // truncation, or a detected invariant violation), never hang or
    // crash.
    let cfg = JvmConfig::builder()
        .threads(48)
        .cores(12)
        .seed(42)
        .chaos(ChaosConfig {
            drop_wakeup_period: 32,
            ..ChaosConfig::default()
        })
        .budget(backstop())
        .monitors(false)
        .build()
        .unwrap();
    match Jvm::new(cfg).run(&xalan().scaled(0.02)) {
        Ok(report) => {
            assert!(report.events_processed <= backstop().max_events + 1);
            assert!(matches!(
                report.outcome,
                RunOutcome::Ok | RunOutcome::Truncated(_)
            ));
        }
        // Even with periodic scans off, the always-on inline checks and
        // the deadlock detector may classify the fault first.
        Err(SimError::Invariant(_)) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}
