//! # scalesim
//!
//! A discrete-event simulation laboratory reproducing **"Factors Affecting
//! Scalability of Multithreaded Java Applications on Manycore Systems"**
//! (Qian, Li, Srisa-an, Jiang, Seth — ISPASS 2015).
//!
//! This meta-crate re-exports the whole workspace under one roof:
//!
//! * [`simkit`] — deterministic discrete-event engine,
//! * [`machine`] — manycore NUMA topology (the paper's 4×12-core AMD box),
//! * [`sched`] — simulated OS scheduler with suspension accounting,
//! * [`sync`] — Java-monitor model plus a DTrace-style lock profiler,
//! * [`heap`] — generational heap with TLABs and an allocation clock,
//! * [`gc`] — stop-the-world parallel generational collector,
//! * [`objtrace`] — Elephant-Tracks-style object lifetime tracing,
//! * [`trace`] — deterministic timeline traces, counters, Perfetto export,
//! * [`workloads`] — six DaCapo-inspired synthetic applications,
//! * [`runtime`] — the JVM-like runtime tying it all together,
//! * [`audit`] — offline concurrency auditor over recorded timelines,
//! * [`analytics`] — offline USL fitting, collapse prediction, attribution,
//! * [`experiments`] — drivers that regenerate every figure in the paper,
//! * [`metrics`] — histograms, CDFs and table rendering.
//!
//! ## Quickstart
//!
//! ```
//! use scalesim::runtime::{Jvm, JvmConfig};
//! use scalesim::workloads::xalan;
//!
//! let app = xalan().scaled(0.05); // 5% of standard work for a fast demo
//! let config = JvmConfig::builder().threads(4).build().unwrap();
//! let report = Jvm::new(config).run(&app).unwrap();
//! assert!(report.wall_time.as_secs_f64() > 0.0);
//! assert!(report.gc.collections() > 0);
//! ```

pub use scalesim_analytics as analytics;
pub use scalesim_audit as audit;
pub use scalesim_core as runtime;
pub use scalesim_experiments as experiments;
pub use scalesim_gc as gc;
pub use scalesim_heap as heap;
pub use scalesim_machine as machine;
pub use scalesim_metrics as metrics;
pub use scalesim_objtrace as objtrace;
pub use scalesim_sched as sched;
pub use scalesim_simkit as simkit;
pub use scalesim_sync as sync;
pub use scalesim_trace as trace;
pub use scalesim_workloads as workloads;
